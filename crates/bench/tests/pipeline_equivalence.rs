//! The optimized construction pipeline must be indistinguishable from the
//! frozen seed baseline — same triangles, same Gabriel edges, same graph —
//! and bit-identical across thread counts.

use geospan_bench::baseline::{seed_crossing_count, seed_ldel1, seed_planarize};
use geospan_graph::gen::{connected_unit_disk, perturbed_grid, UnitDiskBuilder};
use geospan_graph::planarity::crossing_count;
use geospan_graph::stretch::{stretch_factors, StretchOptions};
use geospan_graph::Graph;
use geospan_topology::ldel;

fn assert_pipeline_matches_seed(udg: &Graph, label: &str) {
    let raw_new = ldel::ldel1(udg);
    let raw_seed = seed_ldel1(udg);
    assert_eq!(raw_new.triangles, raw_seed.triangles, "{label}: triangles");
    assert_eq!(
        raw_new.gabriel_edges, raw_seed.gabriel_edges,
        "{label}: gabriel edges"
    );
    assert_eq!(
        raw_new.graph.edges().collect::<Vec<_>>(),
        raw_seed.graph.edges().collect::<Vec<_>>(),
        "{label}: LDel1 edges"
    );

    let pl_new = ldel::planarized(udg);
    let pl_seed = seed_planarize(udg, raw_seed);
    assert_eq!(pl_new, pl_seed, "{label}: PLDel");

    assert_eq!(
        crossing_count(udg),
        seed_crossing_count(udg),
        "{label}: crossing count"
    );
}

#[test]
fn optimized_pipeline_matches_seed_on_random_instances() {
    for seed in 0..5 {
        let (_pts, udg, _s) = connected_unit_disk(80, 180.0, 55.0, seed * 17 + 1);
        assert_pipeline_matches_seed(&udg, &format!("random seed {seed}"));
    }
}

#[test]
fn optimized_pipeline_matches_seed_on_degenerate_layouts() {
    // Exact grid (jitter 0): massive collinearity and cocircularity, the
    // worst case for the exact predicates and for tie-breaking.
    let pts = perturbed_grid(9, 9, 20.0, 0.0, 3);
    let udg = UnitDiskBuilder::new(45.0).build(&pts);
    assert_pipeline_matches_seed(&udg, "exact grid");

    // Lightly jittered grid: near-degenerate circumcircles.
    let pts = perturbed_grid(9, 9, 20.0, 0.01, 4);
    let udg = UnitDiskBuilder::new(45.0).build(&pts);
    assert_pipeline_matches_seed(&udg, "jittered grid");

    // A single line of nodes: no triangles at all.
    let pts: Vec<_> = (0..15)
        .map(|i| geospan_graph::Point::new(i as f64 * 10.0, 5.0))
        .collect();
    let udg = UnitDiskBuilder::new(25.0).build(&pts);
    assert_pipeline_matches_seed(&udg, "collinear line");
}

/// Thread-count determinism. One test owns every `RAYON_NUM_THREADS`
/// mutation (tests in one binary share the process environment, so the
/// settings must not race with other tests reading it).
#[test]
fn results_are_bit_identical_across_thread_counts() {
    let (_pts, udg, _s) = connected_unit_disk(120, 220.0, 55.0, 7);
    let sub = ldel::planarized(&udg).graph.clone();

    let run = || {
        (
            ldel::ldel1(&udg),
            ldel::planarized(&udg),
            stretch_factors(&udg, &sub, StretchOptions::default()),
            crossing_count(&udg),
        )
    };

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run();
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let four = run();
    std::env::remove_var("RAYON_NUM_THREADS");
    let auto = run();

    assert_eq!(serial.0, four.0, "ldel1: 1 vs 4 threads");
    assert_eq!(serial.1, four.1, "planarized: 1 vs 4 threads");
    assert_eq!(serial.2, four.2, "stretch: 1 vs 4 threads");
    assert_eq!(serial.3, four.3, "crossing count: 1 vs 4 threads");
    assert_eq!(serial.0, auto.0, "ldel1: 1 vs auto threads");
    assert_eq!(serial.2, auto.2, "stretch: 1 vs auto threads");

    // The same at n = 10k (bench calibration: side 200·√(n/100), radius
    // 60), where the rayon stub actually splits the id range and any
    // order-dependence in the arena-backed construction would surface.
    // Stretch is omitted: all-pairs searches don't finish at this size.
    let (_pts, big, _s) = connected_unit_disk(10_000, 2000.0, 60.0, 11);
    let run_big = || {
        (
            ldel::ldel1(&big),
            ldel::planarized(&big),
            crossing_count(&big),
        )
    };

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_big();
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let four = run_big();
    std::env::remove_var("RAYON_NUM_THREADS");

    assert_eq!(serial.0, four.0, "ldel1 @10k: 1 vs 4 threads");
    assert_eq!(serial.1, four.1, "planarized @10k: 1 vs 4 threads");
    assert_eq!(serial.2, four.2, "crossing count @10k: 1 vs 4 threads");
}
