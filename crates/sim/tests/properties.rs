//! Property tests for the simulator: flooding semantics on arbitrary
//! communication graphs.

use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
use geospan_graph::Graph;
use geospan_sim::{Context, MessageKind, Network, Protocol};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Token;

impl MessageKind for Token {
    fn kind(&self) -> &'static str {
        "token"
    }
}

#[derive(Debug)]
struct Flood {
    origin: bool,
    have: bool,
}

impl Protocol for Flood {
    type Message = Token;
    fn on_phase(&mut self, ctx: &mut Context<'_, Token>, phase: usize) {
        if phase == 0 && self.origin {
            self.have = true;
            ctx.broadcast(Token);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Token>, _from: usize, _msg: &Token) {
        if !self.have {
            self.have = true;
            ctx.broadcast(Token);
        }
    }
}

fn deployment() -> impl Strategy<Value = (Graph, usize)> {
    (2usize..50, 15.0f64..60.0, any::<u64>()).prop_flat_map(|(n, radius, seed)| {
        let pts = uniform_points(n, 100.0, seed);
        let g = UnitDiskBuilder::new(radius).build(&pts);
        (Just(g), 0..n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flooding_reaches_exactly_the_component((g, src) in deployment()) {
        let mut net = Network::new(&g, |id| Flood { origin: id == src, have: false });
        let report = net.run_phase(0, 4 * g.node_count() + 8).unwrap();
        // Which nodes should be reached?
        let component: Vec<usize> = g
            .components()
            .into_iter()
            .find(|c| c.contains(&src))
            .unwrap();
        for (id, node) in net.nodes().iter().enumerate() {
            prop_assert_eq!(node.have, component.contains(&id), "node {}", id);
        }
        // One transmission per reached node; stats agree with the report.
        prop_assert_eq!(report.messages, component.len());
        prop_assert_eq!(net.stats().total_sent(), component.len());
        prop_assert_eq!(net.stats().per_kind()["token"], component.len());
        let max = net.stats().max_sent();
        prop_assert!(max <= 1);
    }

    #[test]
    fn jitter_preserves_flooding_semantics(
        (g, src) in deployment(),
        delay in 2usize..6,
        seed in any::<u64>()
    ) {
        let mut net = Network::new(&g, |id| Flood { origin: id == src, have: false })
            .with_jitter(delay, seed);
        let budget = 4 * delay * (g.node_count() + 8);
        net.run_phase(0, budget).unwrap();
        let component: Vec<usize> = g
            .components()
            .into_iter()
            .find(|c| c.contains(&src))
            .unwrap();
        for (id, node) in net.nodes().iter().enumerate() {
            prop_assert_eq!(node.have, component.contains(&id), "node {}", id);
        }
        prop_assert_eq!(net.stats().total_sent(), component.len());
    }
}
