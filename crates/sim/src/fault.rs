//! Deterministic fault injection for the radio simulator.
//!
//! A [`FaultPlan`] describes everything that can go wrong in a run —
//! lost broadcasts, duplicated deliveries, node crashes, temporary
//! partitions — as a pure function of a `u64` seed and the delivery
//! coordinates (sender, receiver, sequence number, attempt). Because the
//! decisions are *hash-based* rather than drawn from a mutable stream,
//! a given delivery fails or succeeds independently of unrelated events:
//! runs are bit-reproducible and failures stay bisectable when the
//! protocol around them changes.
//!
//! A plan with no faults configured ([`FaultPlan::none`], or any plan
//! where [`FaultPlan::is_zero`] holds) never consults the seed and the
//! simulator behaves exactly as the fault-free code path — zero-fault
//! runs are bit-identical to runs without a plan attached.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Where a delivery decision is being made; salts the per-event hash so
/// the loss roll of a data frame and of its ack are independent.
#[derive(Debug, Clone, Copy)]
pub(crate) enum EventKind {
    /// A protocol (data) broadcast reaching one neighbor.
    Data,
    /// A link-layer acknowledgement reaching the original sender.
    Ack,
    /// The duplication roll for a data delivery.
    Duplicate,
}

impl EventKind {
    fn salt(self) -> u64 {
        match self {
            EventKind::Data => 0x9066_9b3f_0aa7_d18d,
            EventKind::Ack => 0x40ca_0c52_ae99_d382,
            EventKind::Duplicate => 0xd05f_61dc_f4c9_7c2c,
        }
    }
}

/// A seeded, reproducible description of radio-level faults.
///
/// Built with the `with_*` methods; attached to a network via
/// [`Network::with_faults`](crate::Network::with_faults).
///
/// # Example
/// ```
/// use geospan_sim::FaultPlan;
///
/// let plan = FaultPlan::new(42)
///     .with_loss(0.1)
///     .with_crash(3, 5)          // node 3 dies at round 5
///     .with_partition(2..6, [0, 1, 2]); // rounds 2..6: {0,1,2} vs rest
/// assert!(!plan.is_zero());
/// assert_eq!(plan.crash_round(3), Some(5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    loss: f64,
    duplicate: f64,
    crashes: BTreeMap<usize, usize>,
    partitions: Vec<Partition>,
}

/// A temporary split of the radio graph: while `rounds` is active, no
/// message crosses between `side` and its complement.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Rounds (half-open) during which the partition is in force.
    pub rounds: Range<usize>,
    /// One side of the cut; everything else is the other side.
    pub side: BTreeSet<usize>,
}

impl Partition {
    /// True when this partition severs `(a, b)` at `round`.
    pub fn severs(&self, a: usize, b: usize, round: usize) -> bool {
        self.rounds.contains(&round) && (self.side.contains(&a) != self.side.contains(&b))
    }
}

impl FaultPlan {
    /// An empty plan over the given seed; add faults with the `with_*`
    /// builders.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            loss: 0.0,
            duplicate: 0.0,
            crashes: BTreeMap::new(),
            partitions: Vec::new(),
        }
    }

    /// The zero-fault plan (attached or not, behavior is identical).
    pub fn none() -> Self {
        FaultPlan::new(0)
    }

    /// Sets the per-link delivery loss probability.
    ///
    /// Each (sender → neighbor) delivery of each transmission attempt is
    /// dropped independently with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0, 1]"
        );
        self.loss = p;
        self
    }

    /// Sets the per-link duplication probability: a delivery arrives
    /// twice with probability `p` (stale MAC retransmissions).
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability must be in [0, 1]"
        );
        self.duplicate = p;
        self
    }

    /// Crashes `node` at `round`: from that round on it neither sends
    /// nor receives. Messages already in the air still arrive elsewhere.
    pub fn with_crash(mut self, node: usize, round: usize) -> Self {
        self.crashes.insert(node, round);
        self
    }

    /// Partitions the radio graph between `side` and its complement for
    /// the given round range.
    pub fn with_partition(
        mut self,
        rounds: Range<usize>,
        side: impl IntoIterator<Item = usize>,
    ) -> Self {
        self.partitions.push(Partition {
            rounds,
            side: side.into_iter().collect(),
        });
        self
    }

    /// True when the plan injects nothing; the simulator then skips the
    /// fault paths entirely, keeping runs bit-identical to no plan.
    pub fn is_zero(&self) -> bool {
        self.loss == 0.0
            && self.duplicate == 0.0
            && self.crashes.is_empty()
            && self.partitions.is_empty()
    }

    /// The seed the per-event decisions are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-link loss probability.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// The per-link duplication probability.
    pub fn duplication(&self) -> f64 {
        self.duplicate
    }

    /// The configured crashes as `(node, round)` pairs, ascending.
    pub fn crashes(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.crashes.iter().map(|(&n, &r)| (n, r))
    }

    /// The configured partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// The round `node` crashes at, if any.
    pub fn crash_round(&self, node: usize) -> Option<usize> {
        self.crashes.get(&node).copied()
    }

    /// True when `node` is dead at `round`.
    pub fn crashed(&self, node: usize, round: usize) -> bool {
        self.crash_round(node).is_some_and(|r| round >= r)
    }

    /// True when some active partition severs `(a, b)` at `round`.
    pub fn severed(&self, a: usize, b: usize, round: usize) -> bool {
        self.partitions.iter().any(|p| p.severs(a, b, round))
    }

    /// Derives the plan for a protocol stage that starts at round zero
    /// after this plan already governed `elapsed_rounds` rounds: nodes
    /// that have already crashed stay dead from the start, nodes whose
    /// crash round lies ahead keep the remainder, and round-scoped
    /// partitions are shifted the same way. The seed is re-derived so
    /// the new stage sees fresh (but still reproducible) loss rolls.
    pub fn for_next_stage(&self, elapsed_rounds: usize) -> FaultPlan {
        let crashes = self
            .crashes
            .iter()
            .map(|(&n, &r)| (n, r.saturating_sub(elapsed_rounds)))
            .collect();
        let partitions = self
            .partitions
            .iter()
            .filter(|p| p.rounds.end > elapsed_rounds)
            .map(|p| Partition {
                rounds: p.rounds.start.saturating_sub(elapsed_rounds)
                    ..p.rounds.end.saturating_sub(elapsed_rounds),
                side: p.side.clone(),
            })
            .collect();
        FaultPlan {
            seed: splitmix(self.seed ^ 0x517c_c1b7_2722_0a95),
            loss: self.loss,
            duplicate: self.duplicate,
            crashes,
            partitions,
        }
    }

    /// True when the data delivery `(sender → receiver)` of packet `seq`
    /// on transmission `attempt` is lost to radio noise.
    ///
    /// Public so engines outside this crate — the discrete-event traffic
    /// engine in particular — can drive the *same* seeded plan with the
    /// same per-event independence guarantees as the round simulator.
    /// Crash and partition checks compose via [`FaultPlan::crashed`] and
    /// [`FaultPlan::severed`].
    pub fn drops_delivery(&self, sender: usize, receiver: usize, seq: u64, attempt: u32) -> bool {
        self.loses(EventKind::Data, sender, receiver, seq, attempt)
    }

    /// True when the data delivery `(sender → receiver)` of packet `seq`
    /// on transmission `attempt` arrives twice (a stale MAC
    /// retransmission).
    ///
    /// Public for the same reason as [`FaultPlan::drops_delivery`]: the
    /// traffic engine consumes the identical per-event rolls, so a
    /// delivery duplicates there iff it would in the round simulator.
    pub fn duplicates_delivery(
        &self,
        sender: usize,
        receiver: usize,
        seq: u64,
        attempt: u32,
    ) -> bool {
        self.duplicates(sender, receiver, seq, attempt)
    }

    /// True when transmission `attempt` of packet `packet` is lost to
    /// radio noise.
    ///
    /// Unlike [`FaultPlan::drops_delivery`], the roll is keyed on the
    /// packet identity and its transmission count alone — never on the
    /// link endpoints. `(packet, attempt)` is a pure function of the
    /// arrival schedule and the retry budget: it does not depend on
    /// where the packet happens to be, which queue served it first, or
    /// what order concurrent events were processed in. That makes the
    /// loss decision invariant under *any* reordering of the engine
    /// around it — sharded execution, phase restructuring, future
    /// optimistic schedulers — while keeping per-packet failures
    /// independent and bisectable exactly as before.
    pub fn drops_packet(&self, packet: u64, attempt: u32) -> bool {
        self.loss > 0.0 && self.packet_roll(EventKind::Data, packet, attempt) < self.loss
    }

    /// True when transmission `attempt` of packet `packet` arrives twice
    /// (a stale MAC retransmission), keyed on `(packet, attempt)` only —
    /// see [`FaultPlan::drops_packet`] for why the link endpoints are
    /// deliberately absent.
    pub fn duplicates_packet(&self, packet: u64, attempt: u32) -> bool {
        self.duplicate > 0.0
            && self.packet_roll(EventKind::Duplicate, packet, attempt) < self.duplicate
    }

    /// Stateless per-(packet, attempt) roll in `[0, 1)`: the
    /// link-endpoint-free counterpart of [`FaultPlan::roll`]. A distinct
    /// salt decorrelates it from the endpoint-keyed rolls so a plan
    /// driving both engines never reuses a decision.
    fn packet_roll(&self, kind: EventKind, packet: u64, attempt: u32) -> f64 {
        let mut h = self.seed ^ kind.salt() ^ 0x7c9a_51b0_ee26_3d14;
        h = splitmix(h ^ packet.wrapping_mul(0x1656_67b1_9e37_79f9));
        h = splitmix(h ^ u64::from(attempt));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Stateless per-event roll in `[0, 1)`.
    pub(crate) fn roll(
        &self,
        kind: EventKind,
        sender: usize,
        receiver: usize,
        seq: u64,
        attempt: u32,
    ) -> f64 {
        let mut h = self.seed ^ kind.salt();
        h = splitmix(h ^ (sender as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        h = splitmix(h ^ (receiver as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
        h = splitmix(h ^ seq.wrapping_mul(0x1656_67b1_9e37_79f9));
        h = splitmix(h ^ u64::from(attempt));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True when the data delivery `(sender → receiver, seq, attempt)`
    /// is lost to radio noise.
    pub(crate) fn loses(
        &self,
        kind: EventKind,
        sender: usize,
        receiver: usize,
        seq: u64,
        attempt: u32,
    ) -> bool {
        self.loss > 0.0 && self.roll(kind, sender, receiver, seq, attempt) < self.loss
    }

    /// True when the delivery arrives twice.
    pub(crate) fn duplicates(
        &self,
        sender: usize,
        receiver: usize,
        seq: u64,
        attempt: u32,
    ) -> bool {
        self.duplicate > 0.0
            && self.roll(EventKind::Duplicate, sender, receiver, seq, attempt) < self.duplicate
    }
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Link-layer acknowledgement / retransmission configuration.
///
/// When attached via
/// [`Network::with_reliability`](crate::Network::with_reliability),
/// every data broadcast is acknowledged by each receiving neighbor; the
/// sender retransmits (same sequence number, so receivers deduplicate)
/// until every neighbor acked or the retry budget is exhausted. This
/// trades extra messages — counted under `"ack"` and `"<kind>-retx"` —
/// for delivery under loss, and it *bounds* the overhead: the
/// constant-messages-per-node claim degrades by at most a factor of
/// `1 + max_retries` plus the ack traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Maximum retransmissions per data broadcast.
    pub max_retries: u32,
    /// Rounds to wait for acks before retransmitting. Must cover a
    /// round trip (2 under synchronous delivery, `2 * max_delay` under
    /// jitter).
    pub ack_timeout: usize,
}

impl ReliabilityConfig {
    /// Ticks a traffic-engine sender waits before retransmission
    /// `attempt` (1-based): one ack timeout's worth of service slots,
    /// doubling per attempt — binary exponential backoff, with the
    /// exponent capped at 6 so delays stay bounded.
    ///
    /// The round simulator keys its own retransmit clock off
    /// [`ReliabilityConfig::ack_timeout`] directly; this helper maps the
    /// same budget onto the discrete-event engine's tick clock so both
    /// layers share one configuration.
    pub fn retry_delay(&self, attempt: u32, service_time: u64) -> u64 {
        let base = (self.ack_timeout.max(1) as u64) * service_time.max(1);
        base << attempt.saturating_sub(1).min(6)
    }

    /// [`retry_delay`](Self::retry_delay) inflated multiplicatively by
    /// an [`OverloadConfig::backoff_factor`] — the backoff a *congested*
    /// sender uses so its retries spread away from a draining queue.
    /// A factor below 1 behaves as 1 (no inflation).
    pub fn congested_retry_delay(&self, attempt: u32, service_time: u64, factor: u32) -> u64 {
        self.retry_delay(attempt, service_time)
            .saturating_mul(u64::from(factor.max(1)))
    }
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            max_retries: 3,
            ack_timeout: 3,
        }
    }
}

/// Node-local overload control for the retransmit layer: sender-queue
/// watermarks with hysteresis.
///
/// Reacting only to the sender's *own* transmit-queue occupancy keeps
/// the rule strictly localized — the same design discipline as the
/// paper's topology-control protocols, where every decision reads only
/// 1- or 2-hop state. The state machine:
///
/// * occupancy ≥ `high_watermark` — **overloaded**: retries are shed
///   outright (the packet drops as `RetryShed`) instead of competing
///   with fresh traffic for the saturated queue;
/// * occupancy back under the high watermark but not yet drained to
///   `low_watermark` — **congested**: retries are still scheduled, but
///   their backoff is multiplied by `backoff_factor`, spreading retry
///   pressure away from the draining queue;
/// * occupancy ≤ `low_watermark` — **normal**: the fixed-budget
///   exponential-backoff behavior resumes unchanged.
///
/// With no overload config attached the retransmit layer is bit-identical
/// to the fixed-budget scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Occupancy at which a sender sheds retries (and enters the
    /// congested state).
    pub high_watermark: usize,
    /// Occupancy at which a congested sender returns to normal
    /// behavior (hysteresis: must drain below this, not merely below
    /// the high watermark).
    pub low_watermark: usize,
    /// Multiplicative backoff inflation applied while congested
    /// (values < 1 behave as 1).
    pub backoff_factor: u32,
}

impl OverloadConfig {
    /// Watermarks scaled to a queue capacity: shed at 3/4 full, recover
    /// at 1/4 full, quadruple backoff in between.
    pub fn for_capacity(capacity: usize) -> Self {
        OverloadConfig {
            high_watermark: (capacity * 3 / 4).max(1),
            low_watermark: capacity / 4,
            backoff_factor: 4,
        }
    }
}

impl Default for OverloadConfig {
    fn default() -> Self {
        // Matched to the traffic engine's default queue capacity of 64.
        OverloadConfig::for_capacity(64)
    }
}

/// What the faults (and the recovery machinery) did during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Deliveries suppressed by loss or partitions.
    pub dropped: usize,
    /// Extra deliveries injected by duplication.
    pub duplicated: usize,
    /// Data retransmissions performed by the reliability layer.
    pub retransmissions: usize,
    /// Broadcasts that exhausted their retries with unacked neighbors.
    pub gave_up: usize,
    /// Nodes dead by the end of the run, ascending.
    pub crashed: Vec<usize>,
    /// Total rounds executed.
    pub rounds: usize,
}

impl FaultReport {
    /// Folds another stage's report into this one (crash sets union,
    /// counters add, rounds accumulate).
    pub fn absorb(&mut self, other: &FaultReport) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.retransmissions += other.retransmissions;
        self.gave_up += other.gave_up;
        self.rounds += other.rounds;
        for &c in &other.crashed {
            if !self.crashed.contains(&c) {
                self.crashed.push(c);
            }
        }
        self.crashed.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_zero() {
        assert!(FaultPlan::none().is_zero());
        assert!(FaultPlan::new(123).is_zero());
        assert!(!FaultPlan::new(0).with_loss(0.01).is_zero());
        assert!(!FaultPlan::new(0).with_crash(1, 0).is_zero());
        assert!(!FaultPlan::new(0).with_duplication(0.5).is_zero());
        assert!(!FaultPlan::new(0).with_partition(0..1, [0]).is_zero());
    }

    #[test]
    fn rolls_are_deterministic_and_independent() {
        let plan = FaultPlan::new(7).with_loss(0.5);
        let a = plan.roll(EventKind::Data, 1, 2, 3, 0);
        assert_eq!(a, plan.roll(EventKind::Data, 1, 2, 3, 0));
        // Different coordinates give different rolls.
        assert_ne!(a, plan.roll(EventKind::Data, 2, 1, 3, 0));
        assert_ne!(a, plan.roll(EventKind::Data, 1, 2, 4, 0));
        assert_ne!(a, plan.roll(EventKind::Data, 1, 2, 3, 1));
        assert_ne!(a, plan.roll(EventKind::Ack, 1, 2, 3, 0));
    }

    #[test]
    fn loss_rate_roughly_respected() {
        let plan = FaultPlan::new(99).with_loss(0.2);
        let lost = (0..10_000)
            .filter(|&i| plan.loses(EventKind::Data, 0, 1, i, 0))
            .count();
        assert!((1_600..2_400).contains(&lost), "lost {lost} of 10000");
    }

    #[test]
    fn crash_and_partition_predicates() {
        let plan = FaultPlan::new(0)
            .with_crash(4, 10)
            .with_partition(5..8, [0, 1]);
        assert!(!plan.crashed(4, 9));
        assert!(plan.crashed(4, 10));
        assert!(plan.crashed(4, 11));
        assert!(!plan.crashed(3, 100));
        assert!(plan.severed(0, 2, 5));
        assert!(plan.severed(2, 1, 7));
        assert!(!plan.severed(0, 1, 6), "same side never severed");
        assert!(!plan.severed(0, 2, 8), "partition healed");
    }

    #[test]
    fn next_stage_carries_crashes_and_shifts_partitions() {
        let plan = FaultPlan::new(5)
            .with_loss(0.1)
            .with_crash(2, 3)
            .with_crash(7, 40)
            .with_partition(0..10, [1])
            .with_partition(30..50, [2]);
        let next = plan.for_next_stage(20);
        assert_eq!(next.crash_round(2), Some(0), "already dead stays dead");
        assert_eq!(next.crash_round(7), Some(20), "future crash shifted");
        assert_eq!(next.partitions().len(), 1, "elapsed partition dropped");
        assert_eq!(next.partitions()[0].rounds, 10..30);
        assert_eq!(next.loss(), 0.1);
        assert_ne!(next.seed(), plan.seed(), "stage seeds decorrelated");
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn loss_out_of_range_rejected() {
        let _ = FaultPlan::new(0).with_loss(1.5);
    }

    #[test]
    fn public_delivery_rolls_match_internal_ones() {
        let plan = FaultPlan::new(11).with_loss(0.3).with_duplication(0.3);
        for seq in 0..200 {
            assert_eq!(
                plan.drops_delivery(1, 2, seq, 0),
                plan.loses(EventKind::Data, 1, 2, seq, 0)
            );
            assert_eq!(
                plan.duplicates_delivery(1, 2, seq, 0),
                plan.duplicates(1, 2, seq, 0)
            );
        }
    }

    #[test]
    fn packet_rolls_are_deterministic_and_endpoint_free() {
        let plan = FaultPlan::new(7).with_loss(0.5).with_duplication(0.5);
        for packet in 0..50u64 {
            for attempt in 0..4u32 {
                assert_eq!(
                    plan.drops_packet(packet, attempt),
                    plan.drops_packet(packet, attempt),
                    "re-rolling the same coordinates must agree"
                );
                assert_eq!(
                    plan.duplicates_packet(packet, attempt),
                    plan.duplicates_packet(packet, attempt)
                );
            }
        }
        // Distinct packets / attempts decide independently (at 50% loss a
        // perfectly correlated pair would always match).
        let distinct = (0..200u64)
            .filter(|&p| plan.drops_packet(p, 0) != plan.drops_packet(p, 1))
            .count();
        assert!(distinct > 50, "attempts look correlated: {distinct}/200");
    }

    #[test]
    fn packet_rolls_decorrelated_from_delivery_rolls() {
        // Same numeric coordinates through the two keying schemes must not
        // reuse the same underlying roll: a plan driving both the
        // endpoint-keyed round simulator and the packet-keyed traffic
        // engine would otherwise couple their fault decisions.
        let plan = FaultPlan::new(42).with_loss(0.5);
        let agree = (0..400u64)
            .filter(|&p| plan.drops_packet(p, 0) == plan.drops_delivery(0, 0, p, 0))
            .count();
        assert!(
            (120..280).contains(&agree),
            "schemes look coupled: agree on {agree}/400"
        );
    }

    #[test]
    fn packet_loss_rate_roughly_respected() {
        let plan = FaultPlan::new(99).with_loss(0.2);
        let lost = (0..10_000u64).filter(|&p| plan.drops_packet(p, 0)).count();
        assert!((1_600..2_400).contains(&lost), "lost {lost} of 10000");
        assert!(
            !FaultPlan::new(99).drops_packet(1, 0),
            "zero loss never drops"
        );
        assert!(!FaultPlan::new(99).duplicates_packet(1, 0));
    }

    #[test]
    fn retry_delay_backs_off_exponentially_and_caps() {
        let rel = ReliabilityConfig {
            max_retries: 10,
            ack_timeout: 3,
        };
        assert_eq!(rel.retry_delay(1, 1), 3);
        assert_eq!(rel.retry_delay(2, 1), 6);
        assert_eq!(rel.retry_delay(3, 1), 12);
        assert_eq!(rel.retry_delay(3, 2), 24, "scales with service time");
        assert_eq!(rel.retry_delay(7, 1), 3 << 6);
        assert_eq!(rel.retry_delay(40, 1), 3 << 6, "exponent capped");
        // Degenerate configs still wait at least one tick.
        let zero = ReliabilityConfig {
            max_retries: 1,
            ack_timeout: 0,
        };
        assert_eq!(zero.retry_delay(1, 0), 1);
    }

    #[test]
    fn congested_retry_delay_inflates_multiplicatively() {
        let rel = ReliabilityConfig {
            max_retries: 10,
            ack_timeout: 3,
        };
        assert_eq!(rel.congested_retry_delay(1, 1, 4), 12);
        assert_eq!(rel.congested_retry_delay(2, 1, 4), 24);
        assert_eq!(rel.congested_retry_delay(3, 2, 2), 48);
        assert_eq!(rel.congested_retry_delay(1, 1, 0), 3, "factor 0 acts as 1");
        assert_eq!(rel.congested_retry_delay(1, 1, 1), rel.retry_delay(1, 1));
    }

    #[test]
    fn overload_config_scales_watermarks_to_capacity() {
        let o = OverloadConfig::for_capacity(16);
        assert_eq!(o.high_watermark, 12);
        assert_eq!(o.low_watermark, 4);
        assert_eq!(o.backoff_factor, 4);
        assert!(o.low_watermark < o.high_watermark);
        // Tiny queues still get a sane (nonzero) high watermark.
        let tiny = OverloadConfig::for_capacity(1);
        assert_eq!(tiny.high_watermark, 1);
        assert_eq!(tiny.low_watermark, 0);
        assert_eq!(OverloadConfig::default(), OverloadConfig::for_capacity(64));
    }
}
