//! A deterministic synchronous message-passing simulator for localized
//! wireless protocols.
//!
//! The headline claim of Wang & Li (ICDCS 2002) is about *communication*:
//! every node constructs the backbone by sending only a constant number of
//! 1-hop broadcast messages. To evaluate that claim honestly, the
//! distributed constructions in this workspace run as real protocols on a
//! simulated radio network, and message counts are **measured** rather
//! than asserted.
//!
//! The model matches the paper's setting:
//!
//! * nodes communicate by local broadcast: one transmission reaches every
//!   1-hop neighbor in the unit disk graph (omni-directional antennas);
//! * execution is round-synchronous ("this protocol can be easily
//!   implemented using synchronous communications", §III-A.1): messages
//!   broadcast in round `k` are delivered in round `k+1`;
//! * protocols proceed in *phases* (clustering, connector election,
//!   triangulation, …); each phase runs to quiescence before the next
//!   begins;
//! * everything is deterministic: nodes act in index order, messages are
//!   delivered in (sender, send-order) order, so every run of a given
//!   deployment is bit-identical.
//!
//! # Example: flooding
//!
//! ```
//! use geospan_graph::{Graph, Point};
//! use geospan_sim::{Context, MessageKind, Network, Protocol};
//!
//! #[derive(Clone)]
//! struct Token(u32);
//! impl MessageKind for Token {
//!     fn kind(&self) -> &'static str { "token" }
//! }
//!
//! struct Flood { have: bool }
//! impl Protocol for Flood {
//!     type Message = Token;
//!     fn on_phase(&mut self, ctx: &mut Context<'_, Token>, phase: usize) {
//!         if phase == 0 && ctx.node() == 0 {
//!             self.have = true;
//!             ctx.broadcast(Token(7));
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, Token>, _from: usize, msg: &Token) {
//!         if !self.have {
//!             self.have = true;
//!             ctx.broadcast(msg.clone());
//!         }
//!     }
//! }
//!
//! let g = Graph::with_edges(
//!     vec![Point::new(0.,0.), Point::new(1.,0.), Point::new(2.,0.)],
//!     [(0,1),(1,2)]);
//! let mut net = Network::new(&g, |_| Flood { have: false });
//! let report = net.run_phase(0, 100).unwrap();
//! assert_eq!(report.rounds, 4); // three delivery rounds + the quiet round
//! assert!(net.nodes().iter().all(|n| n.have));
//! assert_eq!(net.stats().total_sent(), 3); // every node broadcast once
//! ```

//! # Faults and reliability
//!
//! Perfect radios are a modeling choice, not a law of physics. A seeded
//! [`FaultPlan`] attached via [`Network::with_faults`] injects lost
//! broadcasts, duplicated deliveries, node crashes, and temporary
//! partitions — all reproducible from one `u64`. A link-layer
//! ack/retransmit scheme ([`Network::with_reliability`]) recovers lost
//! deliveries with a bounded number of retries; its overhead is counted
//! under the distinct `"ack"` and `"<kind>-retx"` statistics so
//! degradation is measurable. Zero-fault plans leave every run
//! bit-identical to an unfaulted one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use geospan_graph::Graph;

mod churn;
mod fault;

pub use churn::{ChurnEvent, ChurnMix, ChurnPlan, TimedChurn};
use fault::EventKind;
pub use fault::{FaultPlan, FaultReport, OverloadConfig, Partition, ReliabilityConfig};

/// A protocol message that can report its kind for accounting.
///
/// The kind strings become rows of the per-protocol message-cost tables
/// (the paper's Figure 10/12 aggregate them).
pub trait MessageKind: Clone {
    /// A short static label, e.g. `"IamDominator"`.
    fn kind(&self) -> &'static str;
}

/// Per-node protocol state machine.
///
/// One value of the implementing type exists per network node. All
/// interaction with the network goes through the [`Context`]: a node may
/// only *broadcast* to its 1-hop neighbors, exactly like an
/// omni-directional radio.
pub trait Protocol {
    /// The message payload exchanged by this protocol.
    type Message: MessageKind;

    /// Called once at the beginning of each phase (phase `0` is the
    /// protocol start), before any message of that phase is delivered.
    fn on_phase(&mut self, ctx: &mut Context<'_, Self::Message>, phase: usize);

    /// Called for every received message.
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Message>,
        from: usize,
        msg: &Self::Message,
    );
}

/// The interface a node sees while handling an event.
#[derive(Debug)]
pub struct Context<'a, M> {
    node: usize,
    round: usize,
    outbox: &'a mut Vec<M>,
}

impl<M> Context<'_, M> {
    /// The id of the node handling the event.
    #[inline]
    pub fn node(&self) -> usize {
        self.node
    }

    /// The current round number (within the whole run).
    #[inline]
    pub fn round(&self) -> usize {
        self.round
    }

    /// Broadcasts `msg` to all 1-hop neighbors; delivery happens at the
    /// start of the next round. One call is one radio transmission and is
    /// what the message statistics count.
    #[inline]
    pub fn broadcast(&mut self, msg: M) {
        self.outbox.push(msg);
    }
}

/// Message accounting for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageStats {
    sent_per_node: Vec<usize>,
    per_kind: BTreeMap<String, usize>,
}

impl MessageStats {
    fn new(n: usize) -> Self {
        MessageStats {
            sent_per_node: vec![0; n],
            per_kind: BTreeMap::new(),
        }
    }

    /// Number of broadcasts performed by each node.
    pub fn sent_per_node(&self) -> &[usize] {
        &self.sent_per_node
    }

    /// Total broadcasts across all nodes.
    pub fn total_sent(&self) -> usize {
        self.sent_per_node.iter().sum()
    }

    /// The largest per-node broadcast count (the paper's "maximum
    /// communication cost of each node").
    pub fn max_sent(&self) -> usize {
        self.sent_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-node broadcast count.
    pub fn avg_sent(&self) -> f64 {
        if self.sent_per_node.is_empty() {
            0.0
        } else {
            self.total_sent() as f64 / self.sent_per_node.len() as f64
        }
    }

    /// Broadcast counts grouped by [`MessageKind::kind`].
    ///
    /// Reliability-layer traffic appears under its own keys — `"ack"`
    /// for acknowledgements and `"<kind>-retx"` for retransmissions of
    /// `"<kind>"` — so protocol message tables stay comparable whether
    /// or not faults were injected.
    pub fn per_kind(&self) -> &BTreeMap<String, usize> {
        &self.per_kind
    }

    /// Total retransmissions (the sum over all `"*-retx"` kinds).
    pub fn total_retx(&self) -> usize {
        self.per_kind
            .iter()
            .filter(|(k, _)| k.ends_with("-retx"))
            .map(|(_, v)| v)
            .sum()
    }

    /// Merges another run's statistics into this one (same node count).
    ///
    /// # Panics
    /// Panics if the node counts differ.
    pub fn merge(&mut self, other: &MessageStats) {
        assert_eq!(
            self.sent_per_node.len(),
            other.sent_per_node.len(),
            "cannot merge stats over different node sets"
        );
        for (a, b) in self.sent_per_node.iter_mut().zip(&other.sent_per_node) {
            *a += b;
        }
        for (k, &v) in &other.per_kind {
            *self.per_kind.entry(k.clone()).or_insert(0) += v;
        }
    }
}

/// Outcome of running a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseReport {
    /// Rounds executed in this phase (including the final quiet round).
    pub rounds: usize,
    /// Messages broadcast during this phase.
    pub messages: usize,
}

/// Error: a phase failed to reach quiescence within the round budget.
///
/// Localized protocols settle in `O(1)` or `O(diameter)` rounds; hitting
/// the budget indicates a protocol bug (e.g. two nodes re-triggering each
/// other forever) — or, under fault injection, a hang worth diagnosing,
/// which is what the context fields are for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuiescenceTimeout {
    /// The phase that did not converge.
    pub phase: usize,
    /// The round budget that was exhausted.
    pub max_rounds: usize,
    /// Messages still outstanding when the budget ran out: in-flight
    /// deliveries plus unacknowledged reliable broadcasts.
    pub pending: usize,
    /// The last node that broadcast anything (`None` if nothing was
    /// ever sent).
    pub last_active: Option<usize>,
}

impl fmt::Display for QuiescenceTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phase {} did not reach quiescence within {} rounds ({} messages pending; last active node: {})",
            self.phase,
            self.max_rounds,
            self.pending,
            match self.last_active {
                Some(v) => v.to_string(),
                None => "none".to_string(),
            }
        )
    }
}

impl std::error::Error for QuiescenceTimeout {}

/// What one radio transmission carries: either protocol data (tagged
/// with a per-sender sequence number and a retransmission attempt
/// counter) or a link-layer acknowledgement addressed to the original
/// sender.
#[derive(Clone)]
enum Payload<M> {
    Data { seq: u64, attempt: u32, msg: M },
    Ack { to: usize, seq: u64, attempt: u32 },
}

/// A transmission in flight: delivered when `delay` reaches zero.
struct InFlight<M> {
    sender: usize,
    delay: usize,
    payload: Payload<M>,
}

/// A reliable broadcast awaiting acknowledgements from its neighbors.
struct Outstanding<M> {
    msg: M,
    awaiting: BTreeSet<usize>,
    attempt: u32,
    retries_left: u32,
    deadline: usize,
}

/// A simulated radio network: a communication graph plus one protocol
/// state machine per node.
pub struct Network<'g, P: Protocol> {
    graph: &'g Graph,
    nodes: Vec<P>,
    stats: MessageStats,
    round: usize,
    in_flight: Vec<InFlight<P::Message>>,
    /// Jitter configuration: `(max_delay, rng_state)`. `max_delay == 1`
    /// is the synchronous model.
    jitter: (usize, u64),
    /// Injected faults; `None` behaves exactly like a zero plan.
    faults: Option<FaultPlan>,
    /// Ack/retransmit configuration; `None` disables the layer.
    reliability: Option<ReliabilityConfig>,
    /// Next broadcast sequence number, per sender.
    next_seq: Vec<u64>,
    /// Reliable broadcasts not yet fully acknowledged, by (sender, seq).
    pending: BTreeMap<(usize, u64), Outstanding<P::Message>>,
    /// Broadcasts each node has already handled, for duplicate
    /// suppression under reliability (retransmissions reuse the seq).
    seen: Vec<BTreeSet<(usize, u64)>>,
    /// The last node that broadcast anything (timeout diagnostics).
    last_active: Option<usize>,
    dropped: usize,
    duplicated: usize,
    retransmissions: usize,
    gave_up: usize,
}

impl<'g, P: Protocol> Network<'g, P> {
    /// Creates a network over the communication graph `graph`, building
    /// each node's state with `factory(node_id)`.
    pub fn new(graph: &'g Graph, factory: impl FnMut(usize) -> P) -> Self {
        let nodes: Vec<P> = (0..graph.node_count()).map(factory).collect();
        let n = nodes.len();
        Network {
            graph,
            stats: MessageStats::new(n),
            nodes,
            round: 0,
            in_flight: Vec::new(),
            jitter: (1, 0),
            faults: None,
            reliability: None,
            next_seq: vec![0; n],
            pending: BTreeMap::new(),
            seen: vec![BTreeSet::new(); n],
            last_active: None,
            dropped: 0,
            duplicated: 0,
            retransmissions: 0,
            gave_up: 0,
        }
    }

    /// Attaches a fault plan. A [`FaultPlan::is_zero`] plan leaves the
    /// run bit-identical to one without a plan — no random state is
    /// consulted unless a fault probability is actually nonzero.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enables the link-layer ack/retransmit scheme: every broadcast is
    /// acknowledged by each receiving neighbor, and unacknowledged
    /// broadcasts are retransmitted (same sequence number, so receivers
    /// deduplicate) up to [`ReliabilityConfig::max_retries`] times.
    /// Overhead shows up in [`MessageStats::per_kind`] under `"ack"` and
    /// `"<kind>-retx"`.
    pub fn with_reliability(mut self, cfg: ReliabilityConfig) -> Self {
        self.reliability = Some(cfg);
        self
    }

    /// Switches to *asynchronous* delivery: each broadcast is delayed by
    /// a deterministic pseudo-random number of rounds in `1..=max_delay`
    /// (seeded by `seed`). The paper notes its protocols also run under
    /// asynchronous communication; this models bounded, per-message
    /// delivery jitter while keeping phases as synchronization barriers.
    ///
    /// # Panics
    /// Panics if `max_delay == 0`.
    pub fn with_jitter(mut self, max_delay: usize, seed: u64) -> Self {
        assert!(max_delay >= 1, "delivery delay must be at least one round");
        self.jitter = (max_delay, seed | 1);
        self
    }

    /// The communication graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The per-node protocol states (for inspection after a run).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Message statistics accumulated so far.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Rounds elapsed since the network was created (across all phases).
    pub fn rounds_elapsed(&self) -> usize {
        self.round
    }

    /// What the injected faults did to this run so far.
    pub fn fault_report(&self) -> FaultReport {
        let crashed = self
            .faults
            .as_ref()
            .map(|p| {
                p.crashes()
                    .filter(|&(_, r)| r <= self.round)
                    .map(|(v, _)| v)
                    .collect()
            })
            .unwrap_or_default();
        FaultReport {
            dropped: self.dropped,
            duplicated: self.duplicated,
            retransmissions: self.retransmissions,
            gave_up: self.gave_up,
            crashed,
            rounds: self.round,
        }
    }

    fn is_crashed(&self, v: usize) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|p| p.crashed(v, self.round))
    }

    /// Runs one phase: calls [`Protocol::on_phase`] on every node, then
    /// delivers messages round by round until no message is in flight.
    ///
    /// # Errors
    /// Returns [`QuiescenceTimeout`] when the phase exceeds `max_rounds`.
    pub fn run_phase(
        &mut self,
        phase: usize,
        max_rounds: usize,
    ) -> Result<PhaseReport, QuiescenceTimeout> {
        let mut phase_messages = 0usize;
        let mut outbox: Vec<P::Message> = Vec::new();

        // Phase kickoff. Crashed nodes have dead radios *and* dead CPUs.
        for u in 0..self.nodes.len() {
            if self.is_crashed(u) {
                continue;
            }
            let mut ctx = Context {
                node: u,
                round: self.round,
                outbox: &mut outbox,
            };
            self.nodes[u].on_phase(&mut ctx, phase);
            phase_messages += self.record_and_enqueue(u, &mut outbox);
        }

        let mut rounds = 0usize;
        loop {
            rounds += 1;
            if rounds > max_rounds {
                return Err(QuiescenceTimeout {
                    phase,
                    max_rounds,
                    pending: self.in_flight.len() + self.pending.len(),
                    last_active: self.last_active,
                });
            }
            self.round += 1;
            if self.in_flight.is_empty() && self.pending.is_empty() {
                break;
            }
            // Deliver everything whose delay has elapsed; broadcasts made
            // while handling go into a later round's batch.
            let mut deliveries = Vec::new();
            self.in_flight.retain_mut(|f| {
                f.delay -= 1;
                if f.delay == 0 {
                    deliveries.push((f.sender, f.payload.clone()));
                    false
                } else {
                    true
                }
            });
            for (sender, payload) in deliveries {
                match payload {
                    Payload::Ack { to, seq, attempt } => {
                        self.deliver_ack(sender, to, seq, attempt);
                    }
                    Payload::Data { seq, attempt, msg } => {
                        phase_messages +=
                            self.deliver_data(sender, seq, attempt, &msg, &mut outbox);
                    }
                }
            }
            phase_messages += self.retransmit_overdue();
        }
        Ok(PhaseReport {
            rounds,
            messages: phase_messages,
        })
    }

    /// Delivers one data broadcast to every neighbor of `sender`,
    /// applying the fault pipeline (crash, partition, loss, duplication)
    /// per receiver, and — under reliability — emitting acks and
    /// suppressing duplicate handling. Returns the number of broadcasts
    /// triggered (protocol responses plus acks).
    fn deliver_data(
        &mut self,
        sender: usize,
        seq: u64,
        attempt: u32,
        msg: &P::Message,
        outbox: &mut Vec<P::Message>,
    ) -> usize {
        let mut sent = 0usize;
        for vi in 0..self.graph.neighbors(sender).len() {
            let v = self.graph.neighbors(sender)[vi];
            let mut copies = 1usize;
            if let Some(plan) = &self.faults {
                if plan.crashed(v, self.round) {
                    continue;
                }
                if plan.severed(sender, v, self.round)
                    || plan.loses(EventKind::Data, sender, v, seq, attempt)
                {
                    self.dropped += 1;
                    continue;
                }
                if plan.duplicates(sender, v, seq, attempt) {
                    self.duplicated += 1;
                    copies = 2;
                }
            }
            for _ in 0..copies {
                if self.reliability.is_some() {
                    // Link-layer ack: `v` confirms it heard (seq, attempt).
                    self.stats.sent_per_node[v] += 1;
                    *self.stats.per_kind.entry("ack".to_string()).or_insert(0) += 1;
                    sent += 1;
                    let delay = self.next_delay();
                    self.in_flight.push(InFlight {
                        sender: v,
                        delay,
                        payload: Payload::Ack {
                            to: sender,
                            seq,
                            attempt,
                        },
                    });
                    if !self.seen[v].insert((sender, seq)) {
                        // Already handled this broadcast (a retransmission
                        // or an injected duplicate): ack it, don't re-run
                        // the protocol handler.
                        continue;
                    }
                }
                let mut ctx = Context {
                    node: v,
                    round: self.round,
                    outbox,
                };
                self.nodes[v].on_message(&mut ctx, sender, msg);
                sent += self.record_and_enqueue(v, outbox);
            }
        }
        sent
    }

    /// Processes an ack from `acker` addressed to `to` (acks are radio
    /// broadcasts too, so they traverse the same fault pipeline).
    fn deliver_ack(&mut self, acker: usize, to: usize, seq: u64, attempt: u32) {
        if let Some(plan) = &self.faults {
            if plan.crashed(to, self.round) {
                return;
            }
            if plan.severed(acker, to, self.round)
                || plan.loses(EventKind::Ack, acker, to, seq, attempt)
            {
                self.dropped += 1;
                return;
            }
        }
        if let Some(out) = self.pending.get_mut(&(to, seq)) {
            out.awaiting.remove(&acker);
            if out.awaiting.is_empty() {
                self.pending.remove(&(to, seq));
            }
        }
    }

    /// Retransmits every reliable broadcast whose ack deadline has
    /// passed; broadcasts that exhausted their retries (or whose sender
    /// crashed) are abandoned and counted as `gave_up`.
    fn retransmit_overdue(&mut self) -> usize {
        let Some(rel) = self.reliability else {
            return 0;
        };
        let due: Vec<(usize, u64)> = self
            .pending
            .iter()
            .filter(|(_, out)| out.deadline <= self.round)
            .map(|(&k, _)| k)
            .collect();
        let mut sent = 0usize;
        for key in due {
            let (sender, _) = key;
            let sender_crashed = self.is_crashed(sender);
            let out = self.pending.get_mut(&key).expect("due key present");
            if out.retries_left == 0 || sender_crashed {
                self.gave_up += 1;
                self.pending.remove(&key);
                continue;
            }
            out.retries_left -= 1;
            out.attempt += 1;
            out.deadline = self.round + rel.ack_timeout;
            let attempt = out.attempt;
            let msg = out.msg.clone();
            self.stats.sent_per_node[sender] += 1;
            *self
                .stats
                .per_kind
                .entry(format!("{}-retx", msg.kind()))
                .or_insert(0) += 1;
            self.retransmissions += 1;
            self.last_active = Some(sender);
            sent += 1;
            let delay = self.next_delay();
            self.in_flight.push(InFlight {
                sender,
                delay,
                payload: Payload::Data {
                    seq: key.1,
                    attempt,
                    msg,
                },
            });
        }
        sent
    }

    /// Runs phases `0..phases`, each to quiescence.
    ///
    /// # Errors
    /// Returns [`QuiescenceTimeout`] if any phase exceeds `max_rounds`.
    pub fn run_phases(
        &mut self,
        phases: usize,
        max_rounds: usize,
    ) -> Result<Vec<PhaseReport>, QuiescenceTimeout> {
        (0..phases).map(|p| self.run_phase(p, max_rounds)).collect()
    }

    /// Consumes the network, returning node states and statistics.
    pub fn into_parts(self) -> (Vec<P>, MessageStats) {
        (self.nodes, self.stats)
    }

    fn record_and_enqueue(&mut self, sender: usize, outbox: &mut Vec<P::Message>) -> usize {
        let k = outbox.len();
        if k > 0 {
            self.last_active = Some(sender);
        }
        for msg in outbox.drain(..) {
            self.stats.sent_per_node[sender] += 1;
            *self
                .stats
                .per_kind
                .entry(msg.kind().to_string())
                .or_insert(0) += 1;
            let seq = self.next_seq[sender];
            self.next_seq[sender] += 1;
            if let Some(rel) = self.reliability {
                let awaiting: BTreeSet<usize> =
                    self.graph.neighbors(sender).iter().copied().collect();
                if !awaiting.is_empty() {
                    self.pending.insert(
                        (sender, seq),
                        Outstanding {
                            msg: msg.clone(),
                            awaiting,
                            attempt: 0,
                            retries_left: rel.max_retries,
                            deadline: self.round + rel.ack_timeout,
                        },
                    );
                }
            }
            let delay = self.next_delay();
            self.in_flight.push(InFlight {
                sender,
                delay,
                payload: Payload::Data {
                    seq,
                    attempt: 0,
                    msg,
                },
            });
        }
        k
    }

    /// Deterministic delay in `1..=max_delay` (xorshift over the jitter
    /// state; constant 1 in the synchronous model).
    fn next_delay(&mut self) -> usize {
        let (max_delay, state) = &mut self.jitter;
        if *max_delay == 1 {
            return 1;
        }
        let mut s = *state;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *state = s;
        1 + (s % *max_delay as u64) as usize
    }
}

impl<P: Protocol + fmt::Debug> fmt::Debug for Network<'_, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("round", &self.round)
            .field("in_flight", &self.in_flight.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_graph::Point;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    impl MessageKind for Msg {
        fn kind(&self) -> &'static str {
            match self {
                Msg::Ping(_) => "Ping",
                Msg::Pong(_) => "Pong",
            }
        }
    }

    fn path_graph(n: usize) -> Graph {
        let pts = (0..n).map(|i| Point::new(i as f64, 0.0)).collect();
        Graph::with_edges(pts, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
    }

    /// Forwards pings away from the origin, counting receptions.
    #[derive(Debug)]
    struct Relay {
        received: Vec<(usize, Msg)>,
        forwarded: bool,
    }

    impl Protocol for Relay {
        type Message = Msg;
        fn on_phase(&mut self, ctx: &mut Context<'_, Msg>, phase: usize) {
            if phase == 0 && ctx.node() == 0 {
                ctx.broadcast(Msg::Ping(0));
                self.forwarded = true;
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: usize, msg: &Msg) {
            self.received.push((from, msg.clone()));
            if let Msg::Ping(h) = msg {
                if !self.forwarded {
                    self.forwarded = true;
                    ctx.broadcast(Msg::Ping(h + 1));
                }
            }
        }
    }

    fn relay() -> impl FnMut(usize) -> Relay {
        |_| Relay {
            received: Vec::new(),
            forwarded: false,
        }
    }

    #[test]
    fn ping_travels_the_path() {
        let g = path_graph(5);
        let mut net = Network::new(&g, relay());
        let report = net.run_phase(0, 100).unwrap();
        assert_eq!(report.messages, 5);
        assert_eq!(report.rounds, 6); // 5 delivery rounds + quiet round
                                      // Node 4 received a ping with hop count 3 from node 3.
        assert_eq!(net.nodes()[4].received, vec![(3, Msg::Ping(3))]);
        // Everyone broadcast exactly once.
        assert_eq!(net.stats().sent_per_node(), &[1, 1, 1, 1, 1]);
        assert_eq!(net.stats().max_sent(), 1);
        assert_eq!(net.stats().avg_sent(), 1.0);
        assert_eq!(net.stats().per_kind()["Ping"], 5);
    }

    #[test]
    fn broadcast_reaches_only_neighbors() {
        let g = path_graph(4);
        let mut net = Network::new(&g, relay());
        net.run_phase(0, 100).unwrap();
        // Node 2 hears from 1 and 3, never directly from 0.
        let froms: Vec<usize> = net.nodes()[2].received.iter().map(|(f, _)| *f).collect();
        assert!(froms.contains(&1));
        assert!(!froms.contains(&0));
    }

    #[test]
    fn determinism() {
        let g = path_graph(8);
        let run = || {
            let mut net = Network::new(&g, relay());
            net.run_phase(0, 100).unwrap();
            let (nodes, stats) = net.into_parts();
            (
                nodes.into_iter().map(|n| n.received).collect::<Vec<_>>(),
                stats,
            )
        };
        assert_eq!(run(), run());
    }

    /// Two nodes that ping-pong forever: must hit the round budget.
    #[derive(Debug)]
    struct Livelock;
    impl Protocol for Livelock {
        type Message = Msg;
        fn on_phase(&mut self, ctx: &mut Context<'_, Msg>, _phase: usize) {
            if ctx.node() == 0 {
                ctx.broadcast(Msg::Ping(0));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: usize, msg: &Msg) {
            match msg {
                Msg::Ping(h) => ctx.broadcast(Msg::Pong(h + 1)),
                Msg::Pong(h) => ctx.broadcast(Msg::Ping(h + 1)),
            }
        }
    }

    #[test]
    fn quiescence_timeout_detected() {
        let g = path_graph(2);
        let mut net = Network::new(&g, |_| Livelock);
        let err = net.run_phase(0, 50).unwrap_err();
        assert_eq!(err.phase, 0);
        assert_eq!(err.max_rounds, 50);
        assert!(err.pending > 0, "livelock always has messages in flight");
        assert!(err.last_active.is_some());
        let text = err.to_string();
        assert!(text.contains("phase 0"));
        assert!(text.contains("pending"));
        assert!(text.contains("last active node"));
    }

    /// Phase-driven: phase 0 pings from node 0, phase 1 pings from the
    /// last node.
    #[derive(Debug)]
    struct Phased {
        n: usize,
        seen_phases: Vec<usize>,
    }
    impl Protocol for Phased {
        type Message = Msg;
        fn on_phase(&mut self, ctx: &mut Context<'_, Msg>, phase: usize) {
            self.seen_phases.push(phase);
            if phase == 0 && ctx.node() == 0 {
                ctx.broadcast(Msg::Ping(0));
            }
            if phase == 1 && ctx.node() == self.n - 1 {
                ctx.broadcast(Msg::Pong(0));
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: usize, _msg: &Msg) {}
    }

    #[test]
    fn phases_run_in_order() {
        let g = path_graph(3);
        let mut net = Network::new(&g, |_| Phased {
            n: 3,
            seen_phases: Vec::new(),
        });
        let reports = net.run_phases(2, 10).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].messages, 1);
        assert_eq!(reports[1].messages, 1);
        for node in net.nodes() {
            assert_eq!(node.seen_phases, vec![0, 1]);
        }
        assert_eq!(net.stats().per_kind()["Ping"], 1);
        assert_eq!(net.stats().per_kind()["Pong"], 1);
    }

    #[test]
    fn stats_merge() {
        let mut a = MessageStats::new(3);
        a.sent_per_node = vec![1, 2, 3];
        a.per_kind.insert("Ping".to_string(), 6);
        a.per_kind.insert("Ping-retx".to_string(), 2);
        let mut b = MessageStats::new(3);
        b.sent_per_node = vec![1, 0, 0];
        b.per_kind.insert("Pong".to_string(), 1);
        b.per_kind.insert("Ping-retx".to_string(), 1);
        a.merge(&b);
        assert_eq!(a.sent_per_node(), &[2, 2, 3]);
        assert_eq!(a.total_sent(), 7);
        assert_eq!(a.per_kind()["Ping"], 6);
        assert_eq!(a.per_kind()["Pong"], 1);
        assert_eq!(a.per_kind()["Ping-retx"], 3);
        assert_eq!(a.total_retx(), 3);
    }

    #[test]
    #[should_panic(expected = "different node sets")]
    fn stats_merge_mismatch() {
        let mut a = MessageStats::new(2);
        a.merge(&MessageStats::new(3));
    }

    #[test]
    fn jittered_flood_still_reaches_everyone() {
        let g = path_graph(6);
        for seed in 0..8 {
            let mut net = Network::new(&g, relay()).with_jitter(4, seed);
            let report = net.run_phase(0, 400).unwrap();
            // Same transmissions, just spread over more rounds.
            assert_eq!(report.messages, 6, "seed {seed}");
            assert!(net.nodes().iter().all(|n| n.forwarded), "seed {seed}");
            assert!(report.rounds >= 6, "jitter cannot be faster than sync");
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let g = path_graph(6);
        let run = |seed| {
            let mut net = Network::new(&g, relay()).with_jitter(3, seed);
            let r = net.run_phase(0, 400).unwrap();
            let (nodes, _stats) = net.into_parts();
            (
                r.rounds,
                nodes.into_iter().map(|n| n.received).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_delay_rejected() {
        let g = path_graph(2);
        let _ = Network::new(&g, relay()).with_jitter(0, 1);
    }

    #[test]
    fn empty_network() {
        let g = Graph::new(vec![]);
        let mut net = Network::new(&g, relay());
        let report = net.run_phase(0, 10).unwrap();
        assert_eq!(report.messages, 0);
        assert_eq!(net.stats().total_sent(), 0);
        assert_eq!(net.stats().avg_sent(), 0.0);
    }

    // ----- fault injection ---------------------------------------------

    #[test]
    fn zero_fault_plan_is_bit_identical() {
        let g = path_graph(8);
        let plain = {
            let mut net = Network::new(&g, relay());
            let report = net.run_phase(0, 100).unwrap();
            let (nodes, stats) = net.into_parts();
            (
                report,
                nodes.into_iter().map(|n| n.received).collect::<Vec<_>>(),
                stats,
            )
        };
        let faulted = {
            let mut net = Network::new(&g, relay()).with_faults(FaultPlan::none());
            let report = net.run_phase(0, 100).unwrap();
            let fr = net.fault_report();
            assert_eq!(
                (fr.dropped, fr.duplicated, fr.retransmissions, fr.gave_up),
                (0, 0, 0, 0)
            );
            assert!(fr.crashed.is_empty());
            let (nodes, stats) = net.into_parts();
            (
                report,
                nodes.into_iter().map(|n| n.received).collect::<Vec<_>>(),
                stats,
            )
        };
        assert_eq!(plain, faulted);
    }

    #[test]
    fn total_loss_silences_the_network() {
        let g = path_graph(3);
        let mut net = Network::new(&g, relay()).with_faults(FaultPlan::new(7).with_loss(1.0));
        let report = net.run_phase(0, 100).unwrap();
        assert_eq!(report.messages, 1, "only node 0's initial broadcast");
        assert!(net.nodes()[1].received.is_empty());
        assert!(net.nodes()[2].received.is_empty());
        assert_eq!(net.fault_report().dropped, 1, "one neighbor, one drop");
    }

    #[test]
    fn partial_loss_is_seeded_and_deterministic() {
        let g = path_graph(12);
        let run = |seed| {
            let mut net =
                Network::new(&g, relay()).with_faults(FaultPlan::new(seed).with_loss(0.4));
            net.run_phase(0, 200).unwrap();
            let (nodes, stats) = net.into_parts();
            (
                nodes.into_iter().map(|n| n.received).collect::<Vec<_>>(),
                stats,
            )
        };
        assert_eq!(run(3), run(3), "same seed, same casualties");
        assert_ne!(run(3), run(4), "different seed, different casualties");
    }

    #[test]
    fn crash_silences_node() {
        let g = path_graph(5);
        let mut net = Network::new(&g, relay()).with_faults(FaultPlan::new(1).with_crash(2, 0));
        net.run_phase(0, 100).unwrap();
        assert!(net.nodes()[1].forwarded, "upstream of the crash still runs");
        assert!(!net.nodes()[3].forwarded, "crash cuts the relay chain");
        assert!(!net.nodes()[4].forwarded);
        assert_eq!(net.fault_report().crashed, vec![2]);
    }

    #[test]
    fn partition_blocks_delivery() {
        let g = path_graph(2);
        let mut net =
            Network::new(&g, relay()).with_faults(FaultPlan::new(1).with_partition(0..1000, [0]));
        net.run_phase(0, 100).unwrap();
        assert!(net.nodes()[1].received.is_empty());
        assert_eq!(net.fault_report().dropped, 1);
    }

    #[test]
    fn duplication_double_delivers_without_reliability() {
        let g = path_graph(2);
        let mut net =
            Network::new(&g, relay()).with_faults(FaultPlan::new(9).with_duplication(1.0));
        net.run_phase(0, 100).unwrap();
        // Node 1 hears node 0's ping twice (but forwards only once, by
        // the protocol's own guard); node 0 hears the response twice.
        assert_eq!(net.nodes()[1].received.len(), 2);
        assert_eq!(net.nodes()[0].received.len(), 2);
        assert_eq!(net.fault_report().duplicated, 2);
    }

    #[test]
    fn reliability_dedups_duplicates() {
        let g = path_graph(2);
        let mut net = Network::new(&g, relay())
            .with_faults(FaultPlan::new(9).with_duplication(1.0))
            .with_reliability(ReliabilityConfig::default());
        net.run_phase(0, 100).unwrap();
        assert_eq!(
            net.nodes()[1].received.len(),
            1,
            "duplicates are acked but handled once"
        );
        assert!(net.stats().per_kind()["ack"] >= 2);
    }

    #[test]
    fn reliability_retransmits_through_a_transient_partition() {
        let g = path_graph(2);
        let mut net = Network::new(&g, relay())
            .with_faults(FaultPlan::new(5).with_partition(0..4, [0]))
            .with_reliability(ReliabilityConfig {
                max_retries: 5,
                ack_timeout: 2,
            });
        net.run_phase(0, 100).unwrap();
        assert_eq!(net.nodes()[1].received, vec![(0, Msg::Ping(0))]);
        let report = net.fault_report();
        assert!(report.retransmissions > 0, "heal required a retransmit");
        assert_eq!(report.gave_up, 0);
        assert!(net.stats().per_kind()["Ping-retx"] > 0);
        assert_eq!(net.stats().total_retx(), report.retransmissions);
    }

    #[test]
    fn reliability_gives_up_on_a_crashed_neighbor() {
        let g = path_graph(2);
        let mut net = Network::new(&g, relay())
            .with_faults(FaultPlan::new(2).with_crash(1, 0))
            .with_reliability(ReliabilityConfig {
                max_retries: 2,
                ack_timeout: 2,
            });
        net.run_phase(0, 100).unwrap();
        let report = net.fault_report();
        assert_eq!(report.retransmissions, 2, "bounded retries");
        assert_eq!(report.gave_up, 1);
        assert_eq!(net.stats().per_kind()["Ping-retx"], 2);
    }

    #[test]
    fn reliability_is_quiet_overhead_on_a_clean_network() {
        let g = path_graph(5);
        let mut net = Network::new(&g, relay()).with_reliability(ReliabilityConfig::default());
        net.run_phase(0, 100).unwrap();
        // Same protocol outcome as the unfaulted run...
        assert_eq!(net.nodes()[4].received, vec![(3, Msg::Ping(3))]);
        assert_eq!(net.stats().per_kind()["Ping"], 5);
        // ...plus acks, but no retransmissions and nothing abandoned.
        assert!(net.stats().per_kind()["ack"] > 0);
        assert_eq!(net.stats().total_retx(), 0);
        assert_eq!(net.fault_report().gave_up, 0);
    }
}
