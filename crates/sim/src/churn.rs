//! Deterministic churn schedules: joins, leaves, and moves with
//! absolute tick timestamps.
//!
//! A [`ChurnPlan`] is the membership counterpart of [`crate::FaultPlan`]:
//! a seeded, immutable description of every node arrival, departure, and
//! relocation over a run, resolved *before* the run starts. Presence is
//! a pure predicate of `(node, tick)` — never of simulation state — so
//! any engine consuming the plan stays bit-reproducible at any shard or
//! thread count: two engines asking "is node v alive at tick t?" always
//! agree, no matter how their events interleaved.
//!
//! The plan fixes the node *universe* up front: the `initial` nodes
//! present at tick 0 plus one fresh index per join event, assigned in
//! event order. Indices are never reused — a departed node keeps its
//! index (absent forever), which keeps identifiers stable for every
//! layer above (packet records, shard maps, backbone roles).

use geospan_graph::Point;

/// One membership or mobility event (the payload of [`TimedChurn`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// `node` powers up at `position`. Join events must target the next
    /// free universe index (`initial + joins so far`), in event order.
    Join {
        /// The joining node's (pre-assigned) universe index.
        node: usize,
        /// Where it appears.
        position: Point,
    },
    /// `node` powers down, permanently: leaves are never followed by a
    /// re-join of the same index.
    Leave {
        /// The departing node.
        node: usize,
    },
    /// `node` relocates to `to` (present before and after the move).
    Move {
        /// The moving node.
        node: usize,
        /// Its new position.
        to: Point,
    },
}

impl ChurnEvent {
    /// The node the event concerns.
    pub fn node(&self) -> usize {
        match *self {
            ChurnEvent::Join { node, .. }
            | ChurnEvent::Leave { node }
            | ChurnEvent::Move { node, .. } => node,
        }
    }
}

/// A churn event bound to the absolute engine tick it fires at.
///
/// Events at tick `t` apply *before* the engine executes tick `t`'s
/// phases; several events at one tick apply in schedule order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedChurn {
    /// Absolute engine tick.
    pub tick: u64,
    /// What happens.
    pub event: ChurnEvent,
}

/// A deterministic, validated churn schedule.
///
/// # Example
/// ```
/// use geospan_sim::{ChurnEvent, ChurnPlan, TimedChurn};
/// use geospan_graph::Point;
///
/// let plan = ChurnPlan::new(
///     3,
///     vec![
///         TimedChurn { tick: 5, event: ChurnEvent::Join { node: 3, position: Point::new(1.0, 1.0) } },
///         TimedChurn { tick: 9, event: ChurnEvent::Leave { node: 0 } },
///     ],
/// );
/// assert_eq!(plan.universe(), 4);
/// assert!(plan.present(0, 8) && !plan.present(0, 9));
/// assert!(!plan.present(3, 4) && plan.present(3, 5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPlan {
    initial: usize,
    events: Vec<TimedChurn>,
    /// Per universe node: the first tick it is present (0 for initial
    /// nodes).
    join_tick: Vec<u64>,
    /// Per universe node: the first tick it is absent again
    /// (`u64::MAX` when it never leaves).
    leave_tick: Vec<u64>,
}

impl ChurnPlan {
    /// A plan with no churn over `initial` nodes.
    pub fn none(initial: usize) -> ChurnPlan {
        ChurnPlan::new(initial, Vec::new())
    }

    /// Validates and indexes a schedule: `initial` nodes present from
    /// tick 0, plus `events` sorted (stably) by tick.
    ///
    /// # Panics
    /// Panics when the schedule is inconsistent: a join targeting
    /// anything but the next free universe index, a leave or move of a
    /// node that is not present at that tick, or a leave at a node's own
    /// join tick.
    pub fn new(initial: usize, mut events: Vec<TimedChurn>) -> ChurnPlan {
        events.sort_by_key(|e| e.tick);
        let joins = events
            .iter()
            .filter(|e| matches!(e.event, ChurnEvent::Join { .. }))
            .count();
        let universe = initial + joins;
        let mut join_tick = vec![0u64; universe];
        let mut leave_tick = vec![u64::MAX; universe];
        let mut next_join = initial;
        for e in &events {
            match e.event {
                ChurnEvent::Join { node, .. } => {
                    assert_eq!(
                        node, next_join,
                        "join events must claim universe indices in order"
                    );
                    join_tick[node] = e.tick;
                    next_join += 1;
                }
                ChurnEvent::Leave { node } => {
                    assert!(node < universe, "leave of unknown node {node}");
                    assert!(
                        node < initial || (join_tick[node] < e.tick && node < next_join),
                        "leave of node {node} before it joined"
                    );
                    assert_eq!(leave_tick[node], u64::MAX, "node {node} leaves twice");
                    leave_tick[node] = e.tick;
                }
                ChurnEvent::Move { node, .. } => {
                    assert!(node < universe, "move of unknown node {node}");
                    assert!(
                        node < initial || (join_tick[node] <= e.tick && node < next_join),
                        "move of node {node} before it joined"
                    );
                    assert_eq!(
                        leave_tick[node],
                        u64::MAX,
                        "move of node {node} after it left"
                    );
                }
            }
        }
        ChurnPlan {
            initial,
            events,
            join_tick,
            leave_tick,
        }
    }

    /// A seeded random schedule: `events` events over ticks
    /// `1..=horizon`, choosing joins / leaves / moves with the given
    /// relative `mix` weights. Joins and moves land uniformly in the
    /// `side × side` field; leaves pick a uniformly random present node
    /// (never draining the network below two nodes). Purely a function
    /// of its arguments.
    ///
    /// # Panics
    /// Panics when `initial < 2`, `horizon == 0`, or `mix` is all zero.
    pub fn generate(
        seed: u64,
        initial: usize,
        side: f64,
        events: usize,
        horizon: u64,
        mix: ChurnMix,
    ) -> ChurnPlan {
        assert!(initial >= 2, "need at least two initial nodes");
        assert!(horizon > 0, "horizon must be positive");
        let total = u64::from(mix.join) + u64::from(mix.leave) + u64::from(mix.mv);
        assert!(total > 0, "the event mix must allow some event kind");
        let mut ticks: Vec<u64> = (0..events)
            .map(|k| 1 + splitmix(seed ^ 0x6368_7572_6e21_0000 ^ k as u64) % horizon)
            .collect();
        ticks.sort_unstable();
        let mut present: Vec<usize> = (0..initial).collect();
        let mut joined_at: Vec<u64> = vec![0; initial];
        let mut next_join = initial;
        let mut out = Vec::with_capacity(events);
        for (k, tick) in ticks.into_iter().enumerate() {
            let h = splitmix(
                seed.wrapping_add(0x9e37)
                    .wrapping_mul(0x2545_f491_4f6c_dd1d)
                    ^ k as u64,
            );
            let mut kind = h % total;
            // A leave that would drain the network becomes a move. So
            // does a leave when everyone present joined this very tick
            // (a node cannot leave at its own join tick).
            let leavable =
                |present: &[usize], joined_at: &[u64]| present.iter().any(|&v| joined_at[v] < tick);
            if kind >= u64::from(mix.join)
                && kind < u64::from(mix.join) + u64::from(mix.leave)
                && (present.len() <= 2 || !leavable(&present, &joined_at))
            {
                kind = u64::from(mix.join) + u64::from(mix.leave);
            }
            let event = if kind < u64::from(mix.join) {
                let node = next_join;
                next_join += 1;
                present.push(node);
                joined_at.push(tick);
                ChurnEvent::Join {
                    node,
                    position: point_in(side, splitmix(h ^ 0x0070_6f73)),
                }
            } else if kind < u64::from(mix.join) + u64::from(mix.leave) {
                // Probe past nodes that joined at this very tick: leaving
                // at one's own join tick is invalid.
                let mut i = (splitmix(h ^ 0x6c76) % present.len() as u64) as usize;
                while joined_at[present[i]] >= tick {
                    i = (i + 1) % present.len();
                }
                let node = present.swap_remove(i);
                ChurnEvent::Leave { node }
            } else {
                let i = (splitmix(h ^ 0x6d76) % present.len() as u64) as usize;
                ChurnEvent::Move {
                    node: present[i],
                    to: point_in(side, splitmix(h ^ 0x746f)),
                }
            };
            out.push(TimedChurn { tick, event });
        }
        ChurnPlan::new(initial, out)
    }

    /// Nodes present at tick 0.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Size of the node universe: initial nodes plus every join.
    pub fn universe(&self) -> usize {
        self.join_tick.len()
    }

    /// True when the plan schedules no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The validated schedule, sorted by tick.
    pub fn events(&self) -> &[TimedChurn] {
        &self.events
    }

    /// The distinct ticks at which events fire, ascending.
    pub fn ticks(&self) -> Vec<u64> {
        let mut t: Vec<u64> = self.events.iter().map(|e| e.tick).collect();
        t.dedup();
        t
    }

    /// The events firing at exactly `tick`, in schedule order.
    pub fn events_at(&self, tick: u64) -> impl Iterator<Item = &TimedChurn> + '_ {
        let start = self.events.partition_point(|e| e.tick < tick);
        self.events[start..]
            .iter()
            .take_while(move |e| e.tick == tick)
    }

    /// True when `node` is present (joined, not yet departed) at `tick`.
    /// The churn analogue of [`crate::FaultPlan::crashed`]: a pure
    /// predicate, so engine decisions keyed on it are reorder-invariant.
    pub fn present(&self, node: usize, tick: u64) -> bool {
        self.join_tick[node] <= tick && tick < self.leave_tick[node]
    }

    /// The tick `node` becomes present (0 for initial nodes).
    pub fn join_tick(&self, node: usize) -> u64 {
        self.join_tick[node]
    }

    /// The tick `node` departs (`u64::MAX` when it never does).
    pub fn leave_tick(&self, node: usize) -> u64 {
        self.leave_tick[node]
    }

    /// The join position of `node`, when it enters via a join event.
    pub fn join_position(&self, node: usize) -> Option<Point> {
        self.events.iter().find_map(|e| match e.event {
            ChurnEvent::Join { node: v, position } if v == node => Some(position),
            _ => None,
        })
    }
}

/// Relative weights of the three event kinds in [`ChurnPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnMix {
    /// Join weight.
    pub join: u32,
    /// Leave weight.
    pub leave: u32,
    /// Move weight.
    pub mv: u32,
}

impl ChurnMix {
    /// Joins, leaves and moves in equal proportion.
    pub fn balanced() -> ChurnMix {
        ChurnMix {
            join: 1,
            leave: 1,
            mv: 1,
        }
    }

    /// Joins and leaves only — the membership-pure mix the
    /// rebuild-oracle test layer uses (moves are exempt from exact
    /// oracle equality by the paper's keep-while-unbroken policy).
    pub fn membership_only() -> ChurnMix {
        ChurnMix {
            join: 1,
            leave: 1,
            mv: 0,
        }
    }
}

fn point_in(side: f64, h: u64) -> Point {
    let unit = |bits: u64| (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    Point::new(unit(h) * side, unit(splitmix(h)) * side)
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_keeps_everyone_present() {
        let p = ChurnPlan::none(5);
        assert!(p.is_empty());
        assert_eq!(p.universe(), 5);
        for v in 0..5 {
            assert!(p.present(v, 0) && p.present(v, u64::MAX - 1));
        }
        assert!(p.ticks().is_empty());
    }

    #[test]
    fn presence_follows_join_and_leave_ticks() {
        let plan = ChurnPlan::new(
            2,
            vec![
                TimedChurn {
                    tick: 10,
                    event: ChurnEvent::Join {
                        node: 2,
                        position: Point::new(0.0, 0.0),
                    },
                },
                TimedChurn {
                    tick: 20,
                    event: ChurnEvent::Leave { node: 2 },
                },
                TimedChurn {
                    tick: 15,
                    event: ChurnEvent::Move {
                        node: 0,
                        to: Point::new(3.0, 4.0),
                    },
                },
            ],
        );
        assert_eq!(plan.universe(), 3);
        assert!(!plan.present(2, 9));
        assert!(plan.present(2, 10) && plan.present(2, 19));
        assert!(!plan.present(2, 20));
        assert_eq!(plan.join_tick(2), 10);
        assert_eq!(plan.leave_tick(2), 20);
        assert_eq!(plan.leave_tick(0), u64::MAX);
        assert_eq!(plan.join_position(2), Some(Point::new(0.0, 0.0)));
        assert_eq!(plan.join_position(0), None);
        // Events come back sorted by tick; ticks deduplicate.
        assert_eq!(plan.ticks(), vec![10, 15, 20]);
        assert_eq!(plan.events_at(15).count(), 1);
        assert_eq!(plan.events_at(11).count(), 0);
    }

    #[test]
    #[should_panic(expected = "claim universe indices in order")]
    fn out_of_order_join_rejected() {
        let _ = ChurnPlan::new(
            2,
            vec![TimedChurn {
                tick: 1,
                event: ChurnEvent::Join {
                    node: 5,
                    position: Point::new(0.0, 0.0),
                },
            }],
        );
    }

    #[test]
    #[should_panic(expected = "leaves twice")]
    fn double_leave_rejected() {
        let _ = ChurnPlan::new(
            3,
            vec![
                TimedChurn {
                    tick: 1,
                    event: ChurnEvent::Leave { node: 0 },
                },
                TimedChurn {
                    tick: 2,
                    event: ChurnEvent::Leave { node: 0 },
                },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "after it left")]
    fn move_after_leave_rejected() {
        let _ = ChurnPlan::new(
            3,
            vec![
                TimedChurn {
                    tick: 1,
                    event: ChurnEvent::Leave { node: 0 },
                },
                TimedChurn {
                    tick: 2,
                    event: ChurnEvent::Move {
                        node: 0,
                        to: Point::new(1.0, 1.0),
                    },
                },
            ],
        );
    }

    #[test]
    fn generate_is_deterministic_and_valid() {
        let a = ChurnPlan::generate(7, 20, 150.0, 200, 1_000, ChurnMix::balanced());
        let b = ChurnPlan::generate(7, 20, 150.0, 200, 1_000, ChurnMix::balanced());
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.events().len(), 200);
        let c = ChurnPlan::generate(8, 20, 150.0, 200, 1_000, ChurnMix::balanced());
        assert_ne!(a, c, "different seeds diverge");
        // Validity is enforced by the ChurnPlan::new call inside
        // generate; spot-check the tick range and the field bounds.
        for e in a.events() {
            assert!((1..=1_000).contains(&e.tick));
            match e.event {
                ChurnEvent::Join { position: p, .. } | ChurnEvent::Move { to: p, .. } => {
                    assert!((0.0..=150.0).contains(&p.x) && (0.0..=150.0).contains(&p.y));
                }
                ChurnEvent::Leave { .. } => {}
            }
        }
        // At no point does the present population drop below two.
        let mut alive = 20i64;
        for e in a.events() {
            match e.event {
                ChurnEvent::Join { .. } => alive += 1,
                ChurnEvent::Leave { .. } => alive -= 1,
                ChurnEvent::Move { .. } => {}
            }
            assert!(alive >= 2, "population drained");
        }
    }

    #[test]
    fn membership_only_mix_never_moves() {
        let plan = ChurnPlan::generate(3, 10, 100.0, 120, 500, ChurnMix::membership_only());
        assert!(plan
            .events()
            .iter()
            .all(|e| !matches!(e.event, ChurnEvent::Move { .. })));
        assert!(plan
            .events()
            .iter()
            .any(|e| matches!(e.event, ChurnEvent::Join { .. })));
        assert!(plan
            .events()
            .iter()
            .any(|e| matches!(e.event, ChurnEvent::Leave { .. })));
    }
}
