//! Property tests: on a clean network the event-driven engine is exactly
//! the whole-route functions, packet by packet.
//!
//! With a connected planar topology, no faults, and unbounded queues,
//! GPSR traffic must deliver every packet, and every delivered packet's
//! recorded node sequence must equal `gpsr_route`'s path node-for-node —
//! contention only delays packets, it never reroutes them.

use geospan_core::routing::gpsr_route;
use geospan_graph::gen::{connected_unit_disk, UnitDiskBuilder};
use geospan_graph::Graph;
use geospan_topology::gabriel;
use geospan_traffic::{run, Forwarding, PacketOutcome, TrafficConfig, Workload};
use proptest::prelude::*;

/// A connected UDG and its Gabriel subgraph (planar, connected, spans
/// every node — the setting in which GPSR is provably correct).
fn planar_deployment() -> impl Strategy<Value = (Graph, Graph)> {
    (12usize..50, 0u64..10_000).prop_map(|(n, seed)| {
        let (pts, udg, _used) = connected_unit_disk(n, 140.0, 50.0, seed.wrapping_mul(7) + 1);
        let planar = gabriel(&UnitDiskBuilder::new(50.0).build(&pts));
        (udg, planar)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn clean_gpsr_traffic_is_lossless_and_matches_whole_routes(
        (udg, planar) in planar_deployment(),
        rate in 0.05f64..0.9,
        wl_seed in 0u64..1_000,
    ) {
        let n = udg.node_count();
        let arrivals = Workload::uniform(rate, 400).generate(n, wl_seed);
        let cfg = TrafficConfig {
            queue_capacity: usize::MAX,
            record_paths: true,
            max_hops: (50 * n) as u32,
            ..TrafficConfig::default()
        };
        let outcome = run(
            &Forwarding::Gpsr(&planar),
            &udg,
            &arrivals,
            &geospan_sim::FaultPlan::none(),
            &cfg,
        );

        // 100% delivery: GPSR on a connected planar graph cannot fail,
        // and infinite queues mean congestion can only add latency.
        prop_assert_eq!(outcome.report.offered, arrivals.len());
        prop_assert_eq!(
            outcome.report.delivered,
            outcome.report.offered,
            "drops on a clean planar network: {:?}",
            outcome.report.drops
        );

        // Node-for-node agreement with the whole-route function.
        for p in &outcome.packets {
            prop_assert_eq!(p.outcome, PacketOutcome::Delivered);
            let route = gpsr_route(&planar, p.src, p.dst, 50 * n);
            prop_assert!(route.delivered());
            prop_assert_eq!(&p.path, &route.path,
                "packet {} -> {} took a different path through the engine", p.src, p.dst);
            prop_assert_eq!(p.hops as usize, route.hops());
        }
    }
}
