//! The invariant-test harness pinning the traffic engine's scheduling
//! and reliability behavior.
//!
//! Everything downstream (the reliability sweep, the determinism CSV
//! checks, the CLI) rests on three engine invariants:
//!
//! * **Conservation** — every offered packet resolves exactly once:
//!   delivered, or attributed to exactly one drop cause. Loss,
//!   duplication, retransmission, and queue competition may delay or
//!   kill packets but never duplicate or lose track of one.
//! * **Scheduling** — disciplines are work-conserving (a node with a
//!   non-empty queue always has a service slot scheduled; on a clean
//!   network with unbounded queues nothing is ever stranded), DRR never
//!   starves a destination, and the priority discipline degenerates to
//!   FIFO when every packet shares one destination.
//! * **Latency accounting** — a retransmitted packet's latency counts
//!   from its first enqueue, never from a retry.

use geospan_graph::gen::connected_unit_disk;
use geospan_graph::{Graph, Point};
use geospan_sim::{FaultPlan, OverloadConfig, ReliabilityConfig};
use geospan_traffic::{
    run, AdmissionPolicy, Arrival, Discipline, Forwarding, PacketOutcome, QueuedPacket,
    TrafficConfig, Workload,
};
use proptest::prelude::*;

const DISCIPLINES: [Discipline; 3] = [
    Discipline::Fifo,
    Discipline::NearestFirst,
    Discipline::Drr { quantum: 1 },
];

fn discipline() -> impl Strategy<Value = Discipline> {
    (0usize..3).prop_map(|i| DISCIPLINES[i])
}

fn workload() -> impl Strategy<Value = Workload> {
    (0usize..3, 0.05f64..0.8).prop_map(|(kind, rate)| match kind {
        0 => Workload::uniform(rate, 300),
        1 => Workload::hotspot(0, 0.8, rate, 300),
        _ => Workload::bursty(6, rate, 300),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: under any seeded fault plan with loss *and*
    /// duplication, across all disciplines × watermarks × admission,
    /// with and without retransmit,
    /// `offered == delivered + drops.total() + refused`, no packet is
    /// delivered twice, none vanishes, and the per-packet records agree
    /// with the aggregate counters.
    #[test]
    fn every_packet_resolves_exactly_once_under_loss_and_duplication(
        seed in 0u64..5_000,
        (loss, dup) in (0.0f64..0.4, 0.0f64..0.4),
        wl in workload(),
        disc in discipline(),
        (retx, watermarks, paced) in (any::<bool>(), any::<bool>(), any::<bool>()),
        capacity in 2usize..24,
    ) {
        let (_pts, udg, _s) = connected_unit_disk(24, 110.0, 45.0, seed % 60 + 1);
        let n = udg.node_count();
        let arrivals = wl.generate(n, seed);
        let faults = FaultPlan::new(seed ^ 0xfeed)
            .with_loss(loss)
            .with_duplication(dup);
        let cfg = TrafficConfig {
            queue_capacity: capacity,
            max_hops: (50 * n) as u32,
            discipline: disc,
            reliability: retx.then(ReliabilityConfig::default),
            overload: watermarks.then(|| OverloadConfig::for_capacity(capacity)),
            admission: if paced {
                AdmissionPolicy::TokenBucket { ticks_per_token: 3, burst: 4 }
            } else {
                AdmissionPolicy::Open
            },
            ..TrafficConfig::default()
        };
        let out = run(&Forwarding::Greedy(&udg), &udg, &arrivals, &faults, &cfg);

        // One record per offered packet, in schedule order.
        prop_assert_eq!(out.report.offered, arrivals.len());
        prop_assert_eq!(out.packets.len(), arrivals.len());

        // Exactly-once accounting: the aggregate equals the records.
        let delivered = out.packets.iter().filter(|p| p.delivered()).count();
        prop_assert_eq!(out.report.delivered, delivered, "duplicate or lost delivery");
        let refused = out
            .packets
            .iter()
            .filter(|p| p.outcome == PacketOutcome::Refused)
            .count();
        prop_assert_eq!(out.report.refused, refused, "refusal accounting disagrees");
        prop_assert_eq!(
            out.report.offered,
            out.report.delivered + out.report.drops.total() + out.report.refused,
            "packets vanished or double-counted: {:?}",
            out.report.drops
        );
        let mut by_cause = [0usize; 6];
        for p in &out.packets {
            if let PacketOutcome::Dropped(c) = p.outcome {
                by_cause[c as usize] += 1;
            }
        }
        prop_assert_eq!(by_cause.iter().sum::<usize>(), out.report.drops.total());

        // Refusals only come from the admission gate; shed retries only
        // from the watermark layer.
        if !paced {
            prop_assert_eq!(out.report.refused, 0);
        }
        if !(watermarks && retx) {
            prop_assert_eq!(out.report.drops.retry_shed, 0);
        }

        // Retransmission accounting ties out packet by packet.
        let retries: usize = out.packets.iter().map(|p| p.retries as usize).sum();
        prop_assert_eq!(out.report.retransmissions, retries);
        if !retx {
            prop_assert_eq!(out.report.retransmissions, 0);
        }
    }

    /// Work conservation: on a clean connected planar network with
    /// unbounded queues, every discipline drains every queue — no
    /// packet is ever stranded behind an idle radio, so GPSR delivery
    /// is 100% regardless of how the discipline reorders service.
    #[test]
    fn disciplines_are_work_conserving_on_clean_networks(
        seed in 0u64..5_000,
        rate in 0.1f64..1.2,
        disc in discipline(),
    ) {
        let (pts, udg, _s) = connected_unit_disk(20, 100.0, 45.0, seed % 40 + 1);
        let planar = geospan_topology::gabriel(
            &geospan_graph::gen::UnitDiskBuilder::new(45.0).build(&pts),
        );
        let n = udg.node_count();
        let arrivals = Workload::uniform(rate, 250).generate(n, seed);
        let cfg = TrafficConfig {
            queue_capacity: usize::MAX,
            max_hops: (50 * n) as u32,
            discipline: disc,
            ..TrafficConfig::default()
        };
        let out = run(
            &Forwarding::Gpsr(&planar),
            &udg,
            &arrivals,
            &FaultPlan::none(),
            &cfg,
        );
        prop_assert_eq!(
            out.report.delivered,
            out.report.offered,
            "{:?} stranded packets: {:?}",
            disc,
            out.report.drops
        );
    }

    /// DRR starvation bound at the discipline level: with F active
    /// flows and quantum q, a flow with packets left waits at most
    /// (F - 1) * q pops between two of its own services.
    #[test]
    fn drr_gap_between_services_of_a_flow_is_bounded(
        flows in 2usize..6,
        quantum in 1u32..4,
        per_flow in 1usize..8,
        order_seed in 0u64..1_000,
    ) {
        let mut q = Discipline::Drr { quantum }.new_queue();
        // Push per_flow packets for each flow in a seed-scrambled but
        // deterministic interleave.
        let mut pushes: Vec<(usize, usize)> = (0..flows)
            .flat_map(|f| (0..per_flow).map(move |i| (f, i)))
            .collect();
        let mut s = order_seed | 1;
        for i in (1..pushes.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            pushes.swap(i, (s % (i as u64 + 1)) as usize);
        }
        for (seq, &(f, i)) in pushes.iter().enumerate() {
            q.push(QueuedPacket {
                id: f * 1_000 + i,
                dst: f,
                remaining: 1.0,
                enqueue_seq: seq as u64,
            });
        }
        let mut last_seen: Vec<Option<usize>> = vec![None; flows];
        let mut served: Vec<usize> = vec![0; flows];
        let total = flows * per_flow;
        for pop_idx in 0..total {
            let p = q.pop().expect("work conserving: non-empty queue pops");
            let f = p.dst;
            if let Some(prev) = last_seen[f] {
                let gap = pop_idx - prev - 1;
                prop_assert!(
                    gap <= (flows - 1) * quantum as usize,
                    "flow {f} waited {gap} pops (F={flows}, q={quantum})"
                );
            }
            last_seen[f] = Some(pop_idx);
            served[f] += 1;
        }
        prop_assert!(q.pop().is_none());
        prop_assert_eq!(served, vec![per_flow; flows], "a flow lost packets");
    }

    /// On single-destination workloads every queued packet shares one
    /// priority key and one DRR flow, so all three disciplines collapse
    /// to FIFO — outcomes are identical, byte for byte.
    #[test]
    fn priority_and_drr_equal_fifo_on_single_destination_workloads(
        seed in 0u64..5_000,
        rate in 0.1f64..0.9,
        loss in 0.0f64..0.2,
        retx in any::<bool>(),
    ) {
        let (_pts, udg, _s) = connected_unit_disk(18, 100.0, 45.0, seed % 40 + 1);
        let n = udg.node_count();
        // Bias 1.0: every packet targets node 0.
        let arrivals = Workload::hotspot(0, 1.0, rate, 250).generate(n, seed);
        let faults = FaultPlan::new(seed).with_loss(loss);
        let outcome = |disc: Discipline| {
            let cfg = TrafficConfig {
                queue_capacity: 16,
                max_hops: (50 * n) as u32,
                record_paths: true,
                discipline: disc,
                reliability: retx.then(ReliabilityConfig::default),
                ..TrafficConfig::default()
            };
            run(&Forwarding::Greedy(&udg), &udg, &arrivals, &faults, &cfg)
        };
        let fifo = outcome(Discipline::Fifo);
        prop_assert_eq!(&fifo, &outcome(Discipline::NearestFirst), "priority != fifo");
        prop_assert_eq!(&fifo, &outcome(Discipline::Drr { quantum: 1 }), "drr != fifo");
    }
}

/// Star deployment: leaves 0, 2, 3 around center 1. The flood 0 → 2 and
/// the single packet 0 → 3 compete for node 0's radio.
fn star() -> Graph {
    let pts = vec![
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(2.0, 0.0),
        Point::new(1.0, 1.0),
    ];
    Graph::with_edges(pts, [(0, 1), (1, 2), (1, 3)])
}

/// DRR serves the sparse destination within its round-robin turn even
/// while a hotspot flood occupies the same queue; FIFO makes it wait
/// behind the whole backlog. The engine-level face of the starvation
/// bound.
#[test]
fn drr_shields_a_sparse_flow_from_a_hotspot_flood() {
    let g = star();
    let mut arrivals: Vec<Arrival> = (0..40)
        .map(|_| Arrival {
            time: 0,
            src: 0,
            dst: 2,
        })
        .collect();
    // The sparse packet enqueues last, behind the whole flood.
    arrivals.push(Arrival {
        time: 0,
        src: 0,
        dst: 3,
    });
    let latency_of_sparse = |disc: Discipline| {
        let cfg = TrafficConfig {
            queue_capacity: usize::MAX,
            discipline: disc,
            ..TrafficConfig::default()
        };
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &arrivals,
            &FaultPlan::none(),
            &cfg,
        );
        assert_eq!(out.report.delivered, out.report.offered, "{disc:?}");
        out.packets.last().unwrap().latency()
    };
    let fifo = latency_of_sparse(Discipline::Fifo);
    let drr = latency_of_sparse(Discipline::Drr { quantum: 1 });
    let prio = latency_of_sparse(Discipline::NearestFirst);
    assert!(fifo > 40, "FIFO makes the sparse packet wait out the flood");
    assert!(
        drr <= 6,
        "DRR serves the sparse flow within its turn (latency {drr})"
    );
    assert!(
        prio <= 6,
        "priority favors the closer destination (latency {prio})"
    );
}

/// Regression (latency accounting): with a forced single-loss link —
/// a partition that swallows exactly the first transmission attempt —
/// the delivered packet's latency must count from its first enqueue at
/// the source, including the retransmission backoff, not from the
/// retry.
#[test]
fn retransmitted_latency_counts_from_first_enqueue() {
    let g = {
        let pts: Vec<Point> = (0..3).map(|i| Point::new(i as f64, 0.0)).collect();
        Graph::with_edges(pts, [(0, 1), (1, 2)])
    };
    // Rounds 0..4 sever {0}: the attempt at t=1 is lost, the retry
    // lands after the heal.
    let plan = FaultPlan::new(0).with_partition(0..4, [0]);
    let cfg = TrafficConfig {
        reliability: Some(ReliabilityConfig {
            max_retries: 3,
            ack_timeout: 2,
        }),
        record_paths: true,
        ..TrafficConfig::default()
    };
    let out = run(
        &Forwarding::Greedy(&g),
        &g,
        &[Arrival {
            time: 0,
            src: 0,
            dst: 2,
        }],
        &plan,
        &cfg,
    );
    assert_eq!(out.report.delivered, 1);
    assert_eq!(out.report.retransmissions, 1, "exactly one forced loss");
    let p = &out.packets[0];
    assert_eq!(p.retries, 1);
    assert_eq!(p.path, vec![0, 1, 2]);
    // Timeline: enqueue t=0; attempt t=1 lost; backoff 2 ticks; retry
    // enqueued t=3; transmits t=4 (healed); final hop t=5. Counting
    // from the retry would claim 2 ticks — the invariant demands 5.
    assert_eq!(p.spawn, 0, "spawn is the first enqueue, never rewritten");
    assert_eq!(p.latency(), 5, "latency spans backoff waits");
}

/// The drop cause of a retry that finds its queue full is `QueueFull`:
/// retries compete with fresh traffic for slots rather than bypassing
/// them.
#[test]
fn retries_compete_for_queue_slots() {
    let g = star();
    // Node 0's queue capacity is 1. The packet to 2 loses its first
    // attempt and backs off; while it waits, fresh packets 0 -> 3 keep
    // the single slot occupied, so the retry finds it taken.
    let plan = FaultPlan::new(0).with_partition(0..1_000, [0]);
    let mut arrivals = vec![Arrival {
        time: 0,
        src: 0,
        dst: 2,
    }];
    for t in 1..40 {
        arrivals.push(Arrival {
            time: t,
            src: 0,
            dst: 3,
        });
    }
    let cfg = TrafficConfig {
        queue_capacity: 1,
        reliability: Some(ReliabilityConfig {
            max_retries: 3,
            ack_timeout: 2,
        }),
        ..TrafficConfig::default()
    };
    let out = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &cfg);
    let first = &out.packets[0];
    assert_eq!(
        first.outcome,
        PacketOutcome::Dropped(geospan_traffic::DropCause::QueueFull),
        "the retry lost the slot race: {:?}",
        first.outcome
    );
}

/// Regression (retry accounting): a shed retry is *not* a
/// retransmission — the frame is never re-sent. On a scenario where
/// every packet loses exactly its first transmission and retries at
/// most once, each packet either retransmits (no watermarks, or queue
/// drained) or is shed, so
/// `retransmissions + retry_shed` under watermarks must equal the
/// fixed-budget run's `retransmissions` on the same seed.
#[test]
fn shed_retries_are_not_retransmissions() {
    let g = {
        let pts: Vec<Point> = (0..2).map(|i| Point::new(i as f64, 0.0)).collect();
        Graph::with_edges(pts, [(0, 1)])
    };
    // Permanently severed link, retry budget 1: every packet is
    // serviced once, hits the single retry decision, and (if retried)
    // is serviced exactly once more before dropping as LinkLoss.
    let plan = FaultPlan::new(0).with_partition(0..1_000_000, [0]);
    let arrivals: Vec<Arrival> = (0..20u64)
        .map(|i| Arrival {
            time: i / 4,
            src: 0,
            dst: 1,
        })
        .collect();
    let base = TrafficConfig {
        queue_capacity: 64,
        reliability: Some(ReliabilityConfig {
            max_retries: 1,
            ack_timeout: 1,
        }),
        ..TrafficConfig::default()
    };
    let nowm = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &base);
    assert_eq!(nowm.report.retransmissions, arrivals.len());
    assert_eq!(nowm.report.drops.retry_shed, 0);

    let cfg = TrafficConfig {
        overload: Some(OverloadConfig {
            high_watermark: 2,
            low_watermark: 0,
            backoff_factor: 4,
        }),
        ..base
    };
    let wm = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &cfg);
    assert!(wm.report.drops.retry_shed > 0, "the backlog shed retries");
    assert!(wm.report.retransmissions > 0, "drained tail still retried");
    assert_eq!(
        wm.report.retransmissions + wm.report.drops.retry_shed,
        nowm.report.retransmissions,
        "every shed retry must be missing from the retransmission count"
    );
    // The per-packet records agree: shed packets spent no retries.
    for p in &wm.packets {
        if p.outcome == PacketOutcome::Dropped(geospan_traffic::DropCause::RetryShed) {
            assert_eq!(p.retries, 0, "a shed packet never retransmitted");
        }
    }
}

/// Determinism contract under overload control: consecutive runs with
/// watermarks *and* admission enabled are bit-identical (the
/// cross-thread-count face of this lives in the bench determinism
/// tests, which diff whole CSV artifacts).
#[test]
fn overload_control_runs_are_bit_identical() {
    let (_pts, udg, _s) = connected_unit_disk(24, 110.0, 45.0, 9);
    let n = udg.node_count();
    let arrivals = Workload::hotspot(0, 0.7, 1.5, 250).generate(n, 13);
    let faults = FaultPlan::new(77).with_loss(0.2);
    let cfg = TrafficConfig {
        queue_capacity: 8,
        max_hops: (50 * n) as u32,
        reliability: Some(ReliabilityConfig::default()),
        overload: Some(OverloadConfig::for_capacity(8)),
        admission: AdmissionPolicy::TokenBucket {
            ticks_per_token: 60,
            burst: 1,
        },
        ..TrafficConfig::default()
    };
    let a = run(&Forwarding::Greedy(&udg), &udg, &arrivals, &faults, &cfg);
    let b = run(&Forwarding::Greedy(&udg), &udg, &arrivals, &faults, &cfg);
    assert_eq!(a, b);
    assert!(a.report.refused > 0, "admission engaged");
    assert_eq!(
        a.report.offered,
        a.report.delivered + a.report.drops.total() + a.report.refused
    );
}

/// Mobility × traffic: a workload served over a backbone whose
/// structure takes a hit. Traffic routed while a backbone node is dead
/// (routing state still pointing at it) dips; after
/// `MobileBackbone::remove_node` heals the hole with one localized
/// 2-hop repair, the same workload delivers fully again.
#[test]
fn delivery_dips_during_a_crash_and_recovers_after_local_repair() {
    use geospan_core::maintenance::{MaintenanceAction, MobileBackbone};
    use geospan_core::BackboneConfig;

    let (pts, _udg, _s) = connected_unit_disk(60, 150.0, 50.0, 6);
    let mut m = MobileBackbone::new(pts, BackboneConfig::new(50.0)).expect("backbone builds");
    let v = m.backbone().backbone_nodes()[0];
    let n = m.udg().node_count();
    // The workload never sources or sinks at the doomed node itself:
    // the dip must come from *transit* traffic through the backbone.
    let arrivals: Vec<Arrival> = Workload::uniform(0.6, 400)
        .generate(n, 21)
        .into_iter()
        .filter(|a| a.src != v && a.dst != v)
        .collect();
    let cfg = TrafficConfig {
        max_hops: (50 * n) as u32,
        ..TrafficConfig::default()
    };

    // Phase 1 — healthy backbone: everything delivers.
    let before = {
        let fw = Forwarding::Backbone {
            backbone: m.backbone(),
            udg: m.udg(),
        };
        run(&fw, m.udg(), &arrivals, &FaultPlan::none(), &cfg)
    };
    assert_eq!(
        before.report.delivered, before.report.offered,
        "healthy backbone delivers everything: {:?}",
        before.report.drops
    );

    // Phase 2 — the node dies but routing still flows over the old
    // structure: transit packets crash with it, delivery dips.
    let during = {
        let fw = Forwarding::Backbone {
            backbone: m.backbone(),
            udg: m.udg(),
        };
        let crash = FaultPlan::new(0).with_crash(v, 0);
        run(&fw, m.udg(), &arrivals, &crash, &cfg)
    };
    assert!(
        during.report.delivered < before.report.delivered,
        "no transit traffic crossed the dead backbone node {v}"
    );
    assert!(during.report.drops.node_crash > 0);

    // Phase 3 — maintenance heals around the hole with one localized
    // repair (no rebuild), and the same workload delivers fully over
    // the repaired backbone.
    let report = m.remove_node(v).expect("removal succeeds");
    assert!(
        matches!(report.action, MaintenanceAction::LocalRepair { .. }),
        "expected a localized 2-hop repair, got {:?}",
        report.action
    );
    let after = {
        let fw = Forwarding::Backbone {
            backbone: m.backbone(),
            udg: m.udg(),
        };
        run(&fw, m.udg(), &arrivals, &FaultPlan::none(), &cfg)
    };
    assert_eq!(
        after.report.delivered, after.report.offered,
        "repaired backbone delivers everything again: {:?}",
        after.report.drops
    );
}
