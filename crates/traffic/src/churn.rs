//! The churn scenario driver: live membership changes interleaved with
//! packet traffic, served by incrementally maintained backbones.
//!
//! A seeded [`ChurnPlan`] timestamps join/leave/move events on the
//! engine's tick axis. The driver runs the sharded traffic engine in
//! **epochs** — the stretches between consecutive churn ticks — over a
//! frozen snapshot of the [`MobileBackbone`]'s topology, then applies
//! the events due at the boundary through the backbone's maintenance
//! path (2-hop local repair, or full rebuilds for the baseline arm)
//! while queued and in-flight packets persist across the boundary.
//!
//! # Where churn sits in the canonical tick phases
//!
//! Events stamped tick `T` take effect **before** any phase of tick
//! `T`: the epoch ending at `T` runs ticks `.. T-1` to completion
//! (through their merge phase), the topology is edited, and tick `T`'s
//! arrivals are the first to route over the repaired backbone. Inside
//! the engine, membership is the pure predicate
//! `join_tick[v] <= t < leave_tick[v]` — a function of the plan alone,
//! never of network state — so every shard answers presence questions
//! identically and churn runs stay **bit-identical at any shard and
//! thread count**, exactly like static runs.
//!
//! A departed node takes its traffic with it
//! ([`DropCause::NodeDeparted`](crate::DropCause)): queued packets
//! drain at the node's next service slot, pending retries die when the
//! backoff expires, transmissions toward it are sent into the void,
//! and packets whose *destination* left can never deliver. The packet
//! ledger `offered == delivered + drops + refused` is preserved
//! through every departure.
//!
//! The per-packet stretch baseline is the **static home-position UDG**
//! (every node at the position it first powers up at); source–
//! destination pairs the baseline does not connect are skipped. Hop
//! lengths are charged from the *evolving* positions.

use geospan_core::maintenance::{MaintenanceAction, MobileBackbone};
use geospan_core::{BackboneConfig, BackboneError};
use geospan_graph::gen::UnitDiskBuilder;
use geospan_graph::Point;
use geospan_sim::{ChurnEvent, ChurnPlan, FaultPlan};
use serde::Serialize;

use crate::engine::{aggregate, ShardCore, Shared, TrafficConfig, TrafficOutcome};
use crate::shard::{default_threads, drive_sequential, drive_threaded, RunStats, ShardMap};
use crate::workload::Arrival;
use crate::{Forwarding, PacketOutcome};

/// Which maintenance arm serves a churn run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// The paper's 2-hop localized repair (full rebuild only when the
    /// repair cannot verify).
    LocalRepair,
    /// Rebuild the whole backbone on every event — the baseline the
    /// repair scheme is judged against.
    FullRebuild,
}

/// Delivery accounting for one window of the tick axis. Packets are
/// binned by **spawn** tick, so a dip in `delivered / offered` around
/// a churn event shows the cost of serving traffic injected while the
/// topology was (being) repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WindowDelivery {
    /// First tick of the window (windows tile `0..` contiguously).
    pub start: u64,
    /// Packets whose arrival was scheduled inside the window.
    pub offered: usize,
    /// Of those, packets eventually delivered (at any later tick).
    pub delivered: usize,
    /// Of those, packets eventually dropped.
    pub dropped: usize,
    /// Of those, packets refused admission at the source.
    pub refused: usize,
}

impl WindowDelivery {
    /// Delivered fraction of the window's offered packets (1.0 for an
    /// empty window).
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }
}

/// What the maintenance layer did over one churn run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChurnReport {
    /// Join events applied.
    pub joins: usize,
    /// Leave events applied.
    pub leaves: usize,
    /// Move events applied.
    pub moves: usize,
    /// Events the backbone absorbed verbatim (constant-time structural
    /// edit, or nothing to do).
    pub kept: usize,
    /// Events resolved by 2-hop localized repair.
    pub local_repairs: usize,
    /// Events that fell back to (or, for the baseline arm, always
    /// took) a full rebuild.
    pub full_rebuilds: usize,
    /// Repair message cost in node-updates: 1 per kept event (one
    /// beacon exchange), the size of the touched neighborhood per
    /// local repair, and the whole present population per full
    /// rebuild. The churn benchmark's cost axis.
    pub repair_cost: u64,
    /// Ticks spent routing over a *stale* logical topology: between the
    /// first unrepaired kept-move (positions drifted, elections kept)
    /// and the next event that re-derives structure. Membership-only
    /// runs always report 0.
    pub staleness_ticks: u64,
    /// Delivery-through-churn, binned by spawn tick.
    pub windows: Vec<WindowDelivery>,
}

/// Everything a churn run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnOutcome {
    /// The traffic measurements (identical shape to a static run).
    pub traffic: TrafficOutcome,
    /// Execution statistics of the sharded drive.
    pub stats: RunStats,
    /// The maintenance-side ledger.
    pub churn: ChurnReport,
}

/// The churn scenario engine: shard/thread knobs as
/// [`ShardedEngine`](crate::ShardedEngine), plus the delivery-window
/// length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnEngine {
    shards: usize,
    threads: Option<usize>,
    window: u64,
}

impl ChurnEngine {
    /// An engine with `shards` spatial shards (clamped to at least 1)
    /// and 100-tick delivery windows.
    pub fn new(shards: usize) -> ChurnEngine {
        ChurnEngine {
            shards: shards.max(1),
            threads: None,
            window: 100,
        }
    }

    /// Pins the worker-thread count (`1` forces the sequential driver).
    pub fn with_threads(mut self, threads: usize) -> ChurnEngine {
        self.threads = Some(threads.max(1));
        self
    }

    /// Sets the delivery-window length in ticks (clamped to at least 1).
    pub fn with_window(mut self, window: u64) -> ChurnEngine {
        self.window = window.max(1);
        self
    }

    /// Serves `arrivals` over a backbone maintained live against
    /// `plan`'s membership events, forwarding with the paper's
    /// dominating-set routing over the current backbone snapshot.
    ///
    /// `initial` positions the `plan.initial()` nodes present at tick
    /// 0; joiners power up at the position their join event carries.
    /// Arrival endpoints may name any universe node — traffic from or
    /// to a node that is absent at the relevant tick resolves as a
    /// [`DropCause::NodeDeparted`](crate::DropCause) drop.
    ///
    /// The outcome is bit-identical at every shard and thread count.
    ///
    /// # Errors
    /// Propagates any [`BackboneError`] from the initial construction
    /// or a maintenance operation.
    ///
    /// # Panics
    /// Panics if `initial.len() != plan.initial()`, an arrival
    /// endpoint is outside the universe, or `cfg.ticks_per_round == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        initial: &[Point],
        radius: f64,
        plan: &ChurnPlan,
        arrivals: &[Arrival],
        faults: &FaultPlan,
        cfg: &TrafficConfig,
        strategy: RepairStrategy,
    ) -> Result<ChurnOutcome, BackboneError> {
        assert_eq!(
            initial.len(),
            plan.initial(),
            "initial positions must cover exactly the plan's initial nodes"
        );
        assert!(cfg.ticks_per_round > 0, "ticks_per_round must be positive");
        // The universe at its *home* positions: initial nodes where
        // they start, joiners where they will power up. This static
        // embedding pins the shard map and the stretch baseline, so
        // neither ever depends on the churn trajectory.
        let mut home: Vec<Point> = initial.to_vec();
        for v in initial.len()..plan.universe() {
            home.push(
                plan.join_position(v)
                    .expect("every joiner's plan carries its position"),
            );
        }
        let n = home.len();
        for a in arrivals {
            assert!(a.src < n && a.dst < n, "arrival endpoints out of bounds");
        }
        let joiners = (initial.len()..n).collect();
        let mut mobile =
            MobileBackbone::with_departed(home.clone(), BackboneConfig::new(radius), joiners)?;
        mobile.set_local_repair(strategy == RepairStrategy::LocalRepair);
        let home_udg = UnitDiskBuilder::new(radius).build(&home);

        let map = ShardMap::spatial(&home, self.shards);
        let s = map.shards();
        let mut per_shard_arrivals: Vec<Vec<u32>> = vec![Vec::new(); s];
        for (i, a) in arrivals.iter().enumerate() {
            per_shard_arrivals[map.shard_of()[a.src] as usize].push(i as u32);
        }
        let threads = self.threads.unwrap_or_else(default_threads).min(s).max(1);

        let mut churn = ChurnReport {
            joins: 0,
            leaves: 0,
            moves: 0,
            kept: 0,
            local_repairs: 0,
            full_rebuilds: 0,
            repair_cost: 0,
            staleness_ticks: 0,
            windows: Vec::new(),
        };
        let mut stale_since: Option<u64> = None;
        let mut cores: Option<Vec<ShardCore<'_>>> = None;
        let mut boundaries = plan.ticks();
        boundaries.push(u64::MAX);
        for boundary in boundaries {
            // Freeze this epoch's topology: routing and hop geometry
            // come from the backbone as repaired so far. The borrows
            // end before the maintenance calls below mutate it.
            let fw = Forwarding::Backbone {
                backbone: mobile.backbone(),
                udg: mobile.udg(),
            };
            let shared = Shared {
                fw: &fw,
                udg: mobile.udg(),
                faults,
                cfg,
                arrivals,
                shard_of: map.shard_of(),
                local_of: map.local_of(),
                churn: Some(plan),
            };
            let mut epoch_cores = match cores.take() {
                Some(c) => c,
                None => per_shard_arrivals
                    .iter()
                    .enumerate()
                    .map(|(i, mine)| ShardCore::new(&shared, i as u32, mine.clone(), map.owned(i)))
                    .collect(),
            };
            if threads <= 1 {
                drive_sequential(&shared, &mut epoch_cores, boundary);
            } else {
                epoch_cores = drive_threaded(&shared, epoch_cores, threads, boundary);
            }
            cores = Some(epoch_cores);
            if boundary == u64::MAX {
                break;
            }
            for timed in plan.events_at(boundary) {
                let (moved, report) = match timed.event {
                    ChurnEvent::Leave { node } => {
                        churn.leaves += 1;
                        (false, mobile.remove_node(node)?)
                    }
                    ChurnEvent::Join { node, position } => {
                        churn.joins += 1;
                        (false, mobile.rejoin_node(node, position)?)
                    }
                    ChurnEvent::Move { node, to } => {
                        churn.moves += 1;
                        let mut pts = mobile.points().to_vec();
                        pts[node] = to;
                        (true, mobile.update_positions(pts)?)
                    }
                };
                match report.action {
                    MaintenanceAction::Kept => {
                        churn.kept += 1;
                        churn.repair_cost += 1;
                        // A kept *move* leaves elections computed on
                        // drifted positions: the topology is stale
                        // until something re-derives structure.
                        if moved && stale_since.is_none() {
                            stale_since = Some(boundary);
                        }
                    }
                    MaintenanceAction::LocalRepair { ref touched } => {
                        churn.local_repairs += 1;
                        churn.repair_cost += touched.len() as u64;
                        if let Some(since) = stale_since.take() {
                            churn.staleness_ticks += boundary - since;
                        }
                    }
                    MaintenanceAction::FullRebuild { .. } => {
                        churn.full_rebuilds += 1;
                        let present = plan.universe() - mobile.departed().len();
                        churn.repair_cost += present as u64;
                        if let Some(since) = stale_since.take() {
                            churn.staleness_ticks += boundary - since;
                        }
                    }
                }
            }
        }
        let cores = cores.expect("the boundary list always ends with the quiescence epoch");
        let stats = RunStats {
            shards: s,
            threads,
            rounds: cores.first().map(|c| c.rounds).unwrap_or(0),
            events: cores.iter().map(|c| c.events).sum(),
            boundary_messages: cores.iter().map(|c| c.boundary_in).sum(),
            idle_shard_rounds: cores.iter().map(|c| c.idle_rounds).sum(),
            events_per_shard: cores.iter().map(|c| c.events).collect(),
        };
        let traffic = aggregate(&home_udg, cores);
        if let Some(since) = stale_since.take() {
            // Still stale when the run quiesced: staleness extends to
            // the last processed tick.
            churn.staleness_ticks += traffic.report.duration.saturating_sub(since);
        }
        churn.windows = windows(&traffic, self.window);
        Ok(ChurnOutcome {
            traffic,
            stats,
            churn,
        })
    }
}

/// Bins the outcome's packets by spawn tick into contiguous
/// `window`-length windows.
fn windows(outcome: &TrafficOutcome, window: u64) -> Vec<WindowDelivery> {
    let last = outcome.packets.iter().map(|p| p.spawn).max();
    let Some(last) = last else {
        return Vec::new();
    };
    let count = (last / window + 1) as usize;
    let mut out: Vec<WindowDelivery> = (0..count)
        .map(|w| WindowDelivery {
            start: w as u64 * window,
            offered: 0,
            delivered: 0,
            dropped: 0,
            refused: 0,
        })
        .collect();
    for rec in &outcome.packets {
        let w = &mut out[(rec.spawn / window) as usize];
        w.offered += 1;
        match rec.outcome {
            PacketOutcome::Delivered => w.delivered += 1,
            PacketOutcome::Dropped(_) => w.dropped += 1,
            PacketOutcome::Refused => w.refused += 1,
        }
    }
    out
}

/// A convenience front door mirroring [`crate::run`]:
/// [`TrafficConfig::shards`] shards, the default worker-thread count,
/// default windows.
///
/// # Errors
/// See [`ChurnEngine::run`].
pub fn run_churn(
    initial: &[Point],
    radius: f64,
    plan: &ChurnPlan,
    arrivals: &[Arrival],
    faults: &FaultPlan,
    cfg: &TrafficConfig,
    strategy: RepairStrategy,
) -> Result<ChurnOutcome, BackboneError> {
    ChurnEngine::new(cfg.shards).run(initial, radius, plan, arrivals, faults, cfg, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use geospan_graph::gen::connected_unit_disk;
    use geospan_sim::{ChurnMix, TimedChurn};

    /// A generated mid-size scenario: 30 initial nodes, balanced churn
    /// (joins, leaves, moves), uniform traffic over the whole universe.
    fn scenario() -> (Vec<Point>, f64, ChurnPlan, Vec<Arrival>) {
        let radius = 35.0;
        let (pts, _udg, _s) = connected_unit_disk(30, 100.0, radius, 11);
        let plan = ChurnPlan::generate(5, 30, 100.0, 12, 200, ChurnMix::balanced());
        let arrivals = Workload::uniform(0.4, 300).generate(plan.universe(), 7);
        (pts, radius, plan, arrivals)
    }

    /// The tentpole invariant: a churn run — topology edits interleaved
    /// with live traffic — produces the identical traffic outcome and
    /// maintenance ledger at every shard and thread count.
    #[test]
    fn churn_runs_are_bit_identical_across_shards_and_threads() {
        let (pts, radius, plan, arrivals) = scenario();
        let cfg = TrafficConfig::default();
        let reference = ChurnEngine::new(1)
            .with_threads(1)
            .run(
                &pts,
                radius,
                &plan,
                &arrivals,
                &FaultPlan::none(),
                &cfg,
                RepairStrategy::LocalRepair,
            )
            .expect("reference run");
        assert!(reference.traffic.report.delivered > 0);
        assert_eq!(
            reference.churn.joins + reference.churn.leaves + reference.churn.moves,
            plan.events().len()
        );
        for shards in [2, 4] {
            for threads in [1, 2] {
                let out = ChurnEngine::new(shards)
                    .with_threads(threads)
                    .run(
                        &pts,
                        radius,
                        &plan,
                        &arrivals,
                        &FaultPlan::none(),
                        &cfg,
                        RepairStrategy::LocalRepair,
                    )
                    .expect("sharded run");
                assert_eq!(
                    out.traffic, reference.traffic,
                    "shards={shards} threads={threads}"
                );
                assert_eq!(
                    out.churn, reference.churn,
                    "shards={shards} threads={threads}"
                );
            }
        }
    }

    /// Departures take their packets with them — and the ledger still
    /// balances. Node 3 of a 6-chain leaves at tick 4 with traffic in
    /// flight through it; later arrivals address the departed node
    /// directly.
    #[test]
    fn departures_take_queued_and_in_flight_packets() {
        let pts: Vec<Point> = (0..6).map(|i| Point::new(i as f64 * 2.0, 0.0)).collect();
        // At service_time 2, packet k pops off node 0 at t = 2(k+1) and
        // reaches node 3 at t = 2k+6: the leave at tick 12 lets the
        // head of the stream through, drains a packet queued at node 3
        // when it departs, and kills the tail on arrival.
        let plan = ChurnPlan::new(
            6,
            vec![TimedChurn {
                tick: 12,
                event: ChurnEvent::Leave { node: 3 },
            }],
        );
        // A stream 0 → 5 straddling the departure, plus two packets
        // addressed *to* the departed node after it left.
        let mut arrivals: Vec<Arrival> = (0..8)
            .map(|i| Arrival {
                time: i,
                src: 0,
                dst: 5,
            })
            .collect();
        arrivals.push(Arrival {
            time: 14,
            src: 0,
            dst: 3,
        });
        arrivals.push(Arrival {
            time: 16,
            src: 5,
            dst: 3,
        });
        let cfg = TrafficConfig {
            service_time: 2,
            ..TrafficConfig::default()
        };
        let out = run_churn(
            &pts,
            2.5,
            &plan,
            &arrivals,
            &FaultPlan::none(),
            &cfg,
            RepairStrategy::LocalRepair,
        )
        .expect("run");
        let r = &out.traffic.report;
        assert!(
            r.drops.node_departed >= 2,
            "traffic to and through node 3 dies with it ({} departed drops)",
            r.drops.node_departed
        );
        assert_eq!(
            r.offered,
            r.delivered + r.drops.total() + r.refused,
            "the packet ledger balances across the departure"
        );
        assert!(r.delivered >= 1, "pre-churn packets still deliver");
    }

    /// Satellite: churn can empty a whole spatial shard mid-run. The
    /// right half of a chain departs node by node; the surviving half
    /// keeps serving traffic, and the emptied-shard run stays identical
    /// to the single-shard run.
    #[test]
    fn churn_can_empty_a_shard_mid_run() {
        let pts: Vec<Point> = (0..8).map(|i| Point::new(i as f64 * 2.0, 0.0)).collect();
        let events = (0..4)
            .map(|k| TimedChurn {
                tick: 5 + k,
                event: ChurnEvent::Leave {
                    node: 7 - k as usize,
                },
            })
            .collect();
        let plan = ChurnPlan::new(8, events);
        // Left-half traffic before, during, and long after the right
        // half has fully departed.
        let arrivals: Vec<Arrival> = (0..20)
            .map(|i| Arrival {
                time: i,
                src: (i % 4) as usize,
                dst: ((i + 1) % 4) as usize,
            })
            .collect();
        let cfg = TrafficConfig::default();
        let reference = ChurnEngine::new(1)
            .with_threads(1)
            .run(
                &pts,
                2.5,
                &plan,
                &arrivals,
                &FaultPlan::none(),
                &cfg,
                RepairStrategy::LocalRepair,
            )
            .expect("reference");
        // The left-half stream outlives the right half's departure.
        let late_delivered = reference
            .traffic
            .packets
            .iter()
            .filter(|p| p.spawn > 8 && p.delivered())
            .count();
        assert!(late_delivered > 0, "the surviving half keeps delivering");
        for shards in [2, 4] {
            let out = ChurnEngine::new(shards)
                .with_threads(2)
                .run(
                    &pts,
                    2.5,
                    &plan,
                    &arrivals,
                    &FaultPlan::none(),
                    &cfg,
                    RepairStrategy::LocalRepair,
                )
                .expect("sharded");
            assert_eq!(out.traffic, reference.traffic, "shards={shards}");
            assert_eq!(out.churn, reference.churn, "shards={shards}");
        }
    }

    /// The baseline arm rebuilds on every membership event and pays for
    /// it: its repair message cost dominates the local-repair arm's on
    /// the same scenario.
    #[test]
    fn full_rebuild_baseline_pays_more_than_local_repair() {
        let radius = 35.0;
        let (pts, _udg, _s) = connected_unit_disk(30, 100.0, radius, 3);
        let plan = ChurnPlan::generate(9, 30, 100.0, 16, 200, ChurnMix::membership_only());
        let arrivals = Workload::uniform(0.3, 300).generate(plan.universe(), 13);
        let cfg = TrafficConfig::default();
        let run = |strategy| {
            run_churn(
                &pts,
                radius,
                &plan,
                &arrivals,
                &FaultPlan::none(),
                &cfg,
                strategy,
            )
            .expect("run")
        };
        let local = run(RepairStrategy::LocalRepair);
        let baseline = run(RepairStrategy::FullRebuild);
        assert_eq!(
            baseline.churn.full_rebuilds,
            baseline.churn.joins + baseline.churn.leaves,
            "the baseline rebuilds on every membership event"
        );
        assert_eq!(baseline.churn.kept + baseline.churn.local_repairs, 0);
        assert!(
            local.churn.kept + local.churn.local_repairs > 0,
            "local repair absorbs some events in place"
        );
        assert!(
            local.churn.repair_cost < baseline.churn.repair_cost,
            "local repair is cheaper: {} vs {}",
            local.churn.repair_cost,
            baseline.churn.repair_cost
        );
        // Membership-only traces never leave the topology stale.
        assert_eq!(local.churn.staleness_ticks, 0);
        assert_eq!(baseline.churn.staleness_ticks, 0);
    }

    /// Windows tile the tick axis and partition the ledger exactly.
    #[test]
    fn windows_partition_the_ledger() {
        let (pts, radius, plan, arrivals) = scenario();
        let cfg = TrafficConfig::default();
        let out = ChurnEngine::new(2)
            .with_window(50)
            .run(
                &pts,
                radius,
                &plan,
                &arrivals,
                &FaultPlan::none(),
                &cfg,
                RepairStrategy::LocalRepair,
            )
            .expect("run");
        let w = &out.churn.windows;
        assert!(!w.is_empty());
        for pair in w.windows(2) {
            assert_eq!(pair[1].start - pair[0].start, 50);
        }
        let r = &out.traffic.report;
        assert_eq!(w.iter().map(|x| x.offered).sum::<usize>(), r.offered);
        assert_eq!(w.iter().map(|x| x.delivered).sum::<usize>(), r.delivered);
        assert_eq!(w.iter().map(|x| x.dropped).sum::<usize>(), r.drops.total());
        assert_eq!(w.iter().map(|x| x.refused).sum::<usize>(), r.refused);
        for x in w {
            assert_eq!(x.offered, x.delivered + x.dropped + x.refused);
        }
    }
}
