//! Structured results of a traffic run.

use serde::Serialize;

/// Why a packet never reached its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DropCause {
    /// The forwarding rule had no next hop (greedy local minimum, or an
    /// exhausted perimeter walk: destination unreachable).
    Stuck,
    /// The next hop's transmit queue was full when the packet arrived.
    QueueFull,
    /// The delivery was lost to radio noise or an active partition.
    LinkLoss,
    /// The node holding (or receiving) the packet had crashed.
    NodeCrash,
    /// The per-packet hop budget ran out.
    HopLimit,
    /// A retry was shed by an overloaded sender: the transmission was
    /// lost and the sender's queue occupancy sat at or above its
    /// [`OverloadConfig::high_watermark`](geospan_sim::OverloadConfig),
    /// so instead of scheduling a retransmission the packet was dropped
    /// to protect the queue.
    RetryShed,
    /// The node holding (or receiving) the packet — or the packet's
    /// destination — had departed the network (churn), taking queued
    /// and in-flight packets with it.
    NodeDeparted,
}

/// Packet drops bucketed by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DropCounts {
    /// Dropped at a forwarding dead end.
    pub stuck: usize,
    /// Dropped at a full transmit queue.
    pub queue_full: usize,
    /// Lost on the air (noise or partition).
    pub link_loss: usize,
    /// Lost to a crashed node.
    pub node_crash: usize,
    /// Exceeded the hop budget.
    pub hop_limit: usize,
    /// Retry shed by an overloaded sender (watermark overload control).
    pub retry_shed: usize,
    /// Lost to a departed node (churn).
    pub node_departed: usize,
}

impl DropCounts {
    /// Total packets dropped.
    pub fn total(&self) -> usize {
        self.stuck
            + self.queue_full
            + self.link_loss
            + self.node_crash
            + self.hop_limit
            + self.retry_shed
            + self.node_departed
    }

    pub(crate) fn record(&mut self, cause: DropCause) {
        match cause {
            DropCause::Stuck => self.stuck += 1,
            DropCause::QueueFull => self.queue_full += 1,
            DropCause::LinkLoss => self.link_loss += 1,
            DropCause::NodeCrash => self.node_crash += 1,
            DropCause::HopLimit => self.hop_limit += 1,
            DropCause::RetryShed => self.retry_shed += 1,
            DropCause::NodeDeparted => self.node_departed += 1,
        }
    }
}

/// How one packet's lifecycle ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PacketOutcome {
    /// Reached its destination.
    Delivered,
    /// Dropped for the given cause.
    Dropped(DropCause),
    /// Refused admission at the source by an
    /// [`AdmissionPolicy`](crate::AdmissionPolicy) — the packet never
    /// entered the network, so it is counted separately from drops.
    Refused,
}

/// One packet's measured lifecycle.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PacketRecord {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Tick the packet entered the network.
    pub spawn: u64,
    /// Tick the lifecycle ended (delivery or drop).
    pub finish: u64,
    /// Successful radio transmissions the packet consumed (its hop
    /// count; retransmissions are counted separately in `retries`).
    pub hops: u32,
    /// Link-layer retransmissions spent on this packet across all hops
    /// (0 unless [`TrafficConfig::reliability`](crate::TrafficConfig)
    /// is set).
    pub retries: u32,
    /// Euclidean length of the traversed path.
    pub length: f64,
    /// How the lifecycle ended.
    pub outcome: PacketOutcome,
    /// Nodes visited, starting at the source (recorded only when
    /// [`TrafficConfig::record_paths`](crate::TrafficConfig) is set).
    pub path: Vec<usize>,
}

impl PacketRecord {
    /// True when the packet reached its destination.
    pub fn delivered(&self) -> bool {
        self.outcome == PacketOutcome::Delivered
    }

    /// End-to-end latency in ticks.
    pub fn latency(&self) -> u64 {
        self.finish - self.spawn
    }
}

/// Aggregate measurements of one traffic run.
///
/// Byte-for-byte reproducible: identical for the same topology,
/// workload schedule, fault plan, and configuration, independent of
/// thread counts or repetition (the engine is single-threaded and all
/// aggregation is in deterministic order).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrafficReport {
    /// Packets offered by the workload.
    pub offered: usize,
    /// Packets delivered to their destination.
    pub delivered: usize,
    /// Drops by cause
    /// (`offered == delivered + drops.total() + refused`).
    pub drops: DropCounts,
    /// Packets refused admission at the source by an
    /// [`AdmissionPolicy`](crate::AdmissionPolicy); they never entered
    /// the network and are not drops.
    pub refused: usize,
    /// Link-layer retransmissions performed across all packets (the
    /// `-retx` overhead of the reliability layer; 0 when retransmit is
    /// disabled).
    pub retransmissions: usize,
    /// Duplicate deliveries injected by the fault plan and suppressed by
    /// per-packet identity (each packet still resolves exactly once).
    pub duplicates_suppressed: usize,
    /// Median delivery latency in ticks (0 when nothing was delivered).
    pub latency_p50: u64,
    /// 99th-percentile delivery latency in ticks.
    pub latency_p99: u64,
    /// Worst delivery latency in ticks.
    pub latency_max: u64,
    /// Mean delivery latency in ticks.
    pub latency_mean: f64,
    /// Mean per-packet hop stretch versus the UDG shortest hop path.
    pub hop_stretch_avg: f64,
    /// Worst per-packet hop stretch.
    pub hop_stretch_max: f64,
    /// Mean per-packet Euclidean stretch versus the UDG shortest path.
    pub length_stretch_avg: f64,
    /// Worst per-packet Euclidean stretch.
    pub length_stretch_max: f64,
    /// Largest transmit-queue occupancy any node reached.
    pub queue_peak_max: usize,
    /// Mean (over nodes) of each node's peak queue occupancy.
    pub queue_peak_mean: f64,
    /// Tick of the last event processed.
    pub duration: u64,
}

impl TrafficReport {
    /// Delivered fraction of offered packets (1.0 for an empty run).
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }

    /// Packets that actually entered the network: offered minus those
    /// refused admission at the source.
    pub fn admitted(&self) -> usize {
        self.offered - self.refused
    }

    /// Delivered fraction of *admitted* packets (1.0 when nothing was
    /// admitted). This is the delivery metric overload control is
    /// judged on: an admission gate that refuses packets it could not
    /// have delivered raises this ratio without lying about drops.
    pub fn admitted_delivery_ratio(&self) -> f64 {
        if self.admitted() == 0 {
            1.0
        } else {
            self.delivered as f64 / self.admitted() as f64
        }
    }

    /// Renders the report as an aligned human-readable block.
    pub fn format(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "offered:          {}", self.offered);
        let _ = writeln!(
            out,
            "delivered:        {} ({:.2}%)",
            self.delivered,
            100.0 * self.delivery_ratio()
        );
        if self.refused > 0 {
            let _ = writeln!(out, "refused:          {} (admission gate)", self.refused);
        }
        let _ = writeln!(
            out,
            "drops:            stuck {}, queue {}, loss {}, crash {}, hop-limit {}, retry-shed {}, departed {}",
            self.drops.stuck,
            self.drops.queue_full,
            self.drops.link_loss,
            self.drops.node_crash,
            self.drops.hop_limit,
            self.drops.retry_shed,
            self.drops.node_departed
        );
        let _ = writeln!(
            out,
            "reliability:      {} retransmissions, {} duplicates suppressed",
            self.retransmissions, self.duplicates_suppressed
        );
        let _ = writeln!(
            out,
            "latency (ticks):  p50 {}, p99 {}, max {}, mean {:.2}",
            self.latency_p50, self.latency_p99, self.latency_max, self.latency_mean
        );
        let _ = writeln!(
            out,
            "stretch:          hops avg {:.3} max {:.3}, length avg {:.3} max {:.3}",
            self.hop_stretch_avg,
            self.hop_stretch_max,
            self.length_stretch_avg,
            self.length_stretch_max
        );
        let _ = writeln!(
            out,
            "queue peaks:      max {}, mean {:.2}",
            self.queue_peak_max, self.queue_peak_mean
        );
        let _ = writeln!(out, "duration (ticks): {}", self.duration);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_counts_bucket_and_total() {
        let mut d = DropCounts::default();
        for c in [
            DropCause::Stuck,
            DropCause::QueueFull,
            DropCause::QueueFull,
            DropCause::LinkLoss,
            DropCause::NodeCrash,
            DropCause::HopLimit,
            DropCause::RetryShed,
            DropCause::NodeDeparted,
        ] {
            d.record(c);
        }
        assert_eq!(d.stuck, 1);
        assert_eq!(d.queue_full, 2);
        assert_eq!(d.retry_shed, 1);
        assert_eq!(d.node_departed, 1);
        assert_eq!(d.total(), 8);
    }

    #[test]
    fn empty_run_has_unit_delivery_ratio() {
        let r = TrafficReport {
            offered: 0,
            delivered: 0,
            drops: DropCounts::default(),
            refused: 0,
            retransmissions: 0,
            duplicates_suppressed: 0,
            latency_p50: 0,
            latency_p99: 0,
            latency_max: 0,
            latency_mean: 0.0,
            hop_stretch_avg: 0.0,
            hop_stretch_max: 0.0,
            length_stretch_avg: 0.0,
            length_stretch_max: 0.0,
            queue_peak_max: 0,
            queue_peak_mean: 0.0,
            duration: 0,
        };
        assert_eq!(r.delivery_ratio(), 1.0);
        assert_eq!(r.admitted_delivery_ratio(), 1.0);
        assert!(r.format().contains("offered:          0"));
        assert!(
            !r.format().contains("refused:"),
            "refused line is omitted when the admission gate never fired"
        );
    }

    #[test]
    fn admitted_ratio_excludes_refusals() {
        let r = TrafficReport {
            offered: 10,
            delivered: 6,
            drops: DropCounts {
                link_loss: 2,
                ..DropCounts::default()
            },
            refused: 2,
            retransmissions: 0,
            duplicates_suppressed: 0,
            latency_p50: 0,
            latency_p99: 0,
            latency_max: 0,
            latency_mean: 0.0,
            hop_stretch_avg: 0.0,
            hop_stretch_max: 0.0,
            length_stretch_avg: 0.0,
            length_stretch_max: 0.0,
            queue_peak_max: 0,
            queue_peak_mean: 0.0,
            duration: 0,
        };
        assert_eq!(r.admitted(), 8);
        assert_eq!(r.delivery_ratio(), 0.6);
        assert_eq!(r.admitted_delivery_ratio(), 0.75);
        assert!(r.format().contains("refused:          2"));
    }
}
