//! A deterministic discrete-event traffic engine for spanner backbones.
//!
//! The backbone `LDel(ICDS)` of Wang & Li (ICDCS 2002) exists to *route
//! traffic*: its hop- and length-spanner bounds only matter for packets
//! actually forwarded over it. This crate serves sustained packet
//! workloads over the topologies the workspace constructs and measures
//! what the static stretch tables cannot — delivery under load,
//! queueing latency, congestion drops, and how faults interact with
//! forwarding decisions made hop by hop.
//!
//! The engine is event-driven rather than round-synchronous:
//!
//! * each tick executes in canonical phases (arrivals → retries →
//!   service completions → merge of forwarded packets), every
//!   tie-break keyed on schedule- or node-local coordinates — so runs
//!   are bit-reproducible *and* independent of how the field is
//!   partitioned, which lets the [`shard`] subsystem execute shards in
//!   parallel ([`TrafficConfig::shards`]) with bit-identical output;
//! * each node owns a finite-capacity transmit queue scheduled by a
//!   pluggable [`QueueDiscipline`] — FIFO, priority by remaining
//!   distance, or per-destination deficit round robin — and a radio
//!   that serves one packet per [`TrafficConfig::service_time`] ticks,
//!   so contention and queue drops emerge from load;
//! * an optional link-layer retransmit scheme (the same
//!   [`ReliabilityConfig`](geospan_sim::ReliabilityConfig) as the round
//!   simulator) retries lost transmissions per hop with exponential
//!   backoff, the retries competing with fresh traffic for queue
//!   slots;
//! * an optional congestion-adaptive overload layer: sender-queue
//!   watermarks ([`OverloadConfig`](geospan_sim::OverloadConfig), read
//!   through a hysteresis [`PressureGauge`]) shed retries and inflate
//!   backoff when a sender's own queue saturates, and a deterministic
//!   token-bucket [`AdmissionPolicy`] paces injection at sources —
//!   both purely node-local rules, so determinism is preserved;
//! * forwarding decisions are the *single-hop* [`Decision`] API of
//!   `geospan_core::routing` (greedy, GPSR, dominating-set backbone
//!   routing), invoked per transmission, so routing state travels with
//!   the packet exactly as it would in a deployed network;
//! * a seeded [`FaultPlan`] drops deliveries, severs partitions, and
//!   crashes nodes mid-flow using the same per-event hash rolls as the
//!   round simulator in `geospan-sim`.
//!
//! # Example
//!
//! ```
//! use geospan_graph::gen::connected_unit_disk;
//! use geospan_sim::FaultPlan;
//! use geospan_topology::gabriel;
//! use geospan_traffic::{run, Forwarding, TrafficConfig, Workload};
//!
//! let (_pts, udg, _s) = connected_unit_disk(40, 120.0, 45.0, 3);
//! let gg = gabriel(&udg);
//! let arrivals = Workload::uniform(0.2, 200).generate(udg.node_count(), 7);
//! let outcome = run(
//!     &Forwarding::Gpsr(&gg),
//!     &udg,
//!     &arrivals,
//!     &FaultPlan::none(),
//!     &TrafficConfig::default(),
//! );
//! assert_eq!(outcome.report.offered, arrivals.len());
//! assert!(outcome.report.delivery_ratio() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use geospan_core::routing::{
    backbone_forward, gpsr_forward, greedy_forward, BackboneSession, Decision, GpsrState,
};
use geospan_core::Backbone;
use geospan_graph::Graph;

pub mod churn;
mod engine;
mod queue;
mod report;
pub mod shard;
mod workload;

pub use churn::{
    run_churn, ChurnEngine, ChurnOutcome, ChurnReport, RepairStrategy, WindowDelivery,
};
pub use engine::{run, AdmissionPolicy, TrafficConfig, TrafficOutcome};
pub use queue::{
    DeficitRoundRobin, Discipline, Fifo, NearestFirst, Pressure, PressureGauge, QueueDiscipline,
    QueuedPacket,
};
pub use report::{DropCause, DropCounts, PacketOutcome, PacketRecord, TrafficReport};
pub use shard::{RunStats, ShardMap, ShardedEngine};
pub use workload::{Arrival, Workload, WorkloadKind};

/// The forwarding scheme a traffic run drives, bound to the topology it
/// routes over.
///
/// All variants share the UDG's vertex set; the engine charges hop
/// lengths from the embedded positions.
pub enum Forwarding<'a> {
    /// Greedy geographic forwarding over the given graph.
    Greedy(&'a Graph),
    /// GPSR (greedy + perimeter recovery) over the given **planar**
    /// graph.
    Gpsr(&'a Graph),
    /// The paper's dominating-set-based routing: ingress to a dominator,
    /// GPSR across `LDel(ICDS)`, egress to the destination.
    Backbone {
        /// The constructed backbone.
        backbone: &'a Backbone,
        /// The unit disk graph the backbone dominates.
        udg: &'a Graph,
    },
}

impl Forwarding<'_> {
    /// A short label for reports and CSV rows.
    pub fn label(&self) -> &'static str {
        match self {
            Forwarding::Greedy(_) => "greedy",
            Forwarding::Gpsr(_) => "gpsr",
            Forwarding::Backbone { .. } => "backbone",
        }
    }

    /// Fresh per-packet routing state.
    fn new_session(&self) -> Session {
        match self {
            Forwarding::Greedy(_) => Session::Stateless,
            Forwarding::Gpsr(_) => Session::Gpsr(GpsrState::new()),
            Forwarding::Backbone { .. } => Session::Backbone(BackboneSession::new()),
        }
    }

    /// One forwarding decision for a packet held by `u` toward `dst`.
    fn decide(&self, session: &mut Session, u: usize, dst: usize) -> Decision {
        match (self, session) {
            (Forwarding::Greedy(g), Session::Stateless) => greedy_forward(g, u, dst),
            (Forwarding::Gpsr(g), Session::Gpsr(state)) => gpsr_forward(g, state, u, dst),
            (Forwarding::Backbone { backbone, udg }, Session::Backbone(state)) => {
                backbone_forward(backbone, udg, state, u, dst)
            }
            // geospan-analyze: allow(D11, sessions are created by new_session on the same Forwarding value; the pairing is structural)
            _ => unreachable!("session type always matches the forwarding scheme"),
        }
    }
}

/// Per-packet routing state, created by [`Forwarding::new_session`].
#[derive(Debug, Clone)]
enum Session {
    Stateless,
    Gpsr(GpsrState),
    Backbone(BackboneSession),
}
