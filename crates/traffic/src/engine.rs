//! The discrete-event core: per-shard event state, per-node transmit
//! queues, and the packet lifecycle (enqueue → transmit → deliver/drop,
//! with optional per-hop retransmission).
//!
//! Since the sharded rewrite the engine executes every tick in four
//! canonical phases (arrivals → retries → service completions → merge of
//! forwarded packets), and every per-event decision — queue tie-breaks,
//! fault rolls, merge order — is keyed on schedule- or node-local
//! coordinates rather than a global event counter. That makes a tick's
//! outcome independent of how its node-local work is interleaved, which
//! is exactly what lets [`crate::shard::ShardedEngine`] split the field
//! into spatial shards and still produce bit-identical output at any
//! shard or thread count. [`run`] is the front door; it drives the same
//! [`ShardCore`] phase code through the shard driver with
//! [`TrafficConfig::shards`] shards.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use geospan_graph::paths::DistanceOracle;
use geospan_graph::Graph;
use geospan_sim::{ChurnPlan, FaultPlan, OverloadConfig, ReliabilityConfig};

use crate::queue::{Discipline, Pressure, PressureGauge, QueueDiscipline, QueuedPacket};
use crate::report::{DropCause, DropCounts, PacketOutcome, PacketRecord, TrafficReport};
use crate::shard::ShardedEngine;
use crate::workload::Arrival;
use crate::{Decision, Forwarding, Session};

/// Source admission control: whether a scheduled arrival is allowed to
/// enter the network at all.
///
/// Refused packets resolve as [`PacketOutcome::Refused`] and are counted
/// in [`TrafficReport::refused`], separately from drops — a refusal
/// spends no network resources, so pacing sources during overload
/// trades offered load for delivery of what *is* admitted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Every scheduled arrival enters the network (the historical
    /// behavior).
    #[default]
    Open,
    /// A deterministic per-source token bucket: each source holds up to
    /// `burst` tokens, regains one every `ticks_per_token` ticks, and
    /// spends one per admitted packet. Arrivals finding an empty bucket
    /// are refused. Buckets start full, refill lazily on arrival, and
    /// use pure integer arithmetic, so admission decisions are a
    /// deterministic function of the arrival schedule alone.
    TokenBucket {
        /// Ticks per regained token (`0` is treated as `1`). A source's
        /// sustained admitted rate is `1 / ticks_per_token` packets per
        /// tick.
        ticks_per_token: u64,
        /// Bucket depth: the largest back-to-back burst a source may
        /// inject (`0` refuses everything).
        burst: u64,
    },
}

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Per-node transmit queue capacity; `usize::MAX` for unbounded
    /// queues.
    pub queue_capacity: usize,
    /// Ticks a node's radio takes to transmit one packet (the service
    /// time of the transmit queue).
    pub service_time: u64,
    /// Per-packet hop budget (drops with [`DropCause::HopLimit`] when
    /// exceeded).
    pub max_hops: u32,
    /// Engine ticks per [`FaultPlan`] round: crash times and partition
    /// windows configured in rounds activate at `round * ticks_per_round`.
    pub ticks_per_round: u64,
    /// Record every packet's node path (costs memory; used by tests and
    /// diagnostics).
    pub record_paths: bool,
    /// The scheduling policy of every node's transmit queue.
    pub discipline: Discipline,
    /// Per-hop link-layer retransmission: a transmission lost to noise
    /// or an active partition is retried after a backoff
    /// ([`ReliabilityConfig::retry_delay`]) up to
    /// [`ReliabilityConfig::max_retries`] times, the retry re-entering
    /// the sender's queue in competition with fresh traffic. `None`
    /// drops on first loss (the original engine behavior).
    pub reliability: Option<ReliabilityConfig>,
    /// Congestion-adaptive overload control for the retransmit layer:
    /// sender-queue watermarks with hysteresis (see [`OverloadConfig`]
    /// and [`PressureGauge`](crate::PressureGauge)). At each retry
    /// decision the sender reads its own queue occupancy — an
    /// overloaded sender sheds the retry ([`DropCause::RetryShed`]); a
    /// congested one inflates the backoff by
    /// [`OverloadConfig::backoff_factor`]. Only meaningful with
    /// `reliability` set; `None` keeps the engine bit-identical to the
    /// fixed-budget retransmit scheme.
    pub overload: Option<OverloadConfig>,
    /// Source admission control. [`AdmissionPolicy::Open`] (the
    /// default) admits every scheduled arrival and is bit-identical to
    /// the historical engine.
    pub admission: AdmissionPolicy,
    /// Number of spatial shards [`run`] partitions the field into
    /// (clamped to at least 1). Any value produces bit-identical
    /// output — sharding is purely an execution strategy — but values
    /// above 1 let the engine run shards on separate cores. See
    /// [`crate::shard`] for the synchronization protocol.
    pub shards: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            queue_capacity: 64,
            service_time: 1,
            max_hops: 10_000,
            ticks_per_round: 1,
            record_paths: false,
            discipline: Discipline::Fifo,
            reliability: None,
            overload: None,
            admission: AdmissionPolicy::Open,
            shards: 1,
        }
    }
}

/// Everything a traffic run produced: the aggregate report plus the
/// per-packet records it was computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficOutcome {
    /// Aggregate measurements.
    pub report: TrafficReport,
    /// One record per offered packet, in arrival-schedule order.
    pub packets: Vec<PacketRecord>,
}

/// The live state of one in-flight packet. Owned by exactly one shard
/// at a time: it lives in that shard's packet store while queued or
/// awaiting a retry, and travels inside a [`BoundaryMsg`] when a
/// service completion forwards it (possibly to another shard).
pub(crate) struct Packet {
    src: usize,
    dst: usize,
    spawn: u64,
    hops: u32,
    /// Total transmissions performed (hops + retransmissions): the
    /// fault-roll attempt coordinate, so every retry sees an
    /// independent loss roll. Without reliability this equals `hops`
    /// at every roll.
    tx: u32,
    /// Retransmissions already spent on the current hop.
    hop_attempt: u32,
    /// Retransmission transmissions performed over the whole lifecycle.
    retx: u32,
    length: f64,
    /// Node currently holding the packet (where a retry re-enqueues).
    holder: usize,
    next_hop: usize,
    session: Session,
    path: Vec<usize>,
}

struct NodeState {
    queue: Box<dyn QueueDiscipline>,
    busy: bool,
    peak: usize,
    /// Per-node enqueue counter: the disciplines' deterministic FIFO
    /// tie-breaker. Node-local (not global) so the sequence a queue
    /// sees is a pure function of that node's event order, which is
    /// identical at every shard count.
    enqueue_seq: u64,
    /// Watermark hysteresis state (only consulted when
    /// [`TrafficConfig::overload`] is set).
    gauge: PressureGauge,
}

/// Per-source token-bucket state for
/// [`AdmissionPolicy::TokenBucket`]: lazily refilled on arrival with
/// pure integer arithmetic.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: u64,
    /// Tick of the last accounted refill boundary (refill remainders
    /// carry forward exactly).
    refilled: u64,
}

/// A packet crossing a shard boundary (or re-entering its own shard —
/// every successful forward goes through a message, so local and remote
/// hops follow the identical code path).
///
/// Merge order is `(sender, emit)`: the forwarding node's id, then its
/// per-tick emission counter. Both are intrinsic to the transmission —
/// neither depends on which shard produced the message or how shards
/// interleaved — so sorting an inbox on this key reconstructs the same
/// canonical order at every shard count.
pub(crate) struct BoundaryMsg {
    /// Node that transmitted the packet.
    pub(crate) sender: u32,
    /// The sender's per-tick emission counter (only exceeds 0 when
    /// `service_time == 0` lets one radio complete several
    /// transmissions in a single tick).
    pub(crate) emit: u32,
    /// Packet id (arrival-schedule index).
    pub(crate) packet: u32,
    /// Node receiving the packet (the chosen next hop).
    pub(crate) receiver: u32,
    /// The packet itself: ownership moves with the message.
    pub(crate) payload: Box<Packet>,
}

/// Everything the shard cores share read-only.
pub(crate) struct Shared<'a, 'g> {
    pub(crate) fw: &'a Forwarding<'g>,
    pub(crate) udg: &'a Graph,
    pub(crate) faults: &'a FaultPlan,
    pub(crate) cfg: &'a TrafficConfig,
    pub(crate) arrivals: &'a [Arrival],
    /// Node id → owning shard.
    pub(crate) shard_of: &'a [u32],
    /// Node id → index within its owning shard's node table.
    pub(crate) local_of: &'a [u32],
    /// Membership schedule under churn (`None` for static runs). A
    /// departed node takes its queued and in-flight packets with it:
    /// see the presence checks in [`ShardCore::inject`],
    /// [`ShardCore::arrive`], [`ShardCore::retry`] and
    /// [`ShardCore::service`].
    pub(crate) churn: Option<&'a ChurnPlan>,
}

impl Shared<'_, '_> {
    /// Whether node `v` is a network member at `time` (always true for
    /// static runs). A pure function of the churn plan's timestamps —
    /// never of network state — so every shard answers identically and
    /// bit-identity across shard counts is preserved.
    pub(crate) fn present(&self, v: usize, time: u64) -> bool {
        self.churn.is_none_or(|plan| plan.present(v, time))
    }
}

/// One shard's event engine: the nodes it owns, the packets it
/// currently holds, and its arrival/retry/service event sources.
///
/// A tick executes in phases, each draining one event source to
/// exhaustion before the next starts:
///
/// 1. **Arrivals** at this tick, in schedule order — admission, then
///    injection at the source node.
/// 2. **Retries** whose backoff expires at this tick, in packet-id
///    order — the packet rejoins its holder's queue.
/// 3. **Service completions** at this tick, in `(time, node)` heap
///    order — the radio emits its head-of-line packet, rolls the
///    per-`(packet, attempt)` faults, and *defers* every successful
///    forward into an outbox message instead of applying it.
/// 4. **Merge** (after all shards finish phase 3): incoming messages,
///    sorted by `(sender, emit)`, are applied — the packet arrives at
///    its next hop and re-enters a queue or resolves.
///
/// Phases 1–3 touch only node-local state (each node's queue, gauge and
/// counters; each packet's fields), so their intra-phase order across
/// *different* nodes is immaterial — any partition of the nodes into
/// shards executes them identically. Phase 4's sort key restores one
/// global order for the only cross-node effects. Together that is the
/// bit-identity argument for [`crate::shard::ShardedEngine`].
pub(crate) struct ShardCore<'a> {
    /// This shard's id.
    pub(crate) id: u32,
    /// Arrival-schedule indices whose source this shard owns, ascending.
    my_arrivals: Vec<u32>,
    cursor: usize,
    /// Global ids of the nodes this shard owns, ascending.
    owned: &'a [u32],
    /// Pending service completions, keyed `(time, node)`. The `busy`
    /// flag keeps at most one entry per node, so keys are unique.
    services: BinaryHeap<Reverse<(u64, u32)>>,
    /// Pending retransmission backoffs, keyed `(time, packet)`. A
    /// packet has at most one retry outstanding, so keys are unique.
    retries: BinaryHeap<Reverse<(u64, u32)>>,
    /// Packet store, slot per offered packet: `Some` while this shard
    /// holds the packet, `None` while it is elsewhere (or resolved).
    /// Linear ownership doubles as the double-resolve check.
    store: Vec<Option<Box<Packet>>>,
    /// Node state, indexed by local id (position in `owned`).
    nodes: Vec<NodeState>,
    /// Token buckets by local id (empty under [`AdmissionPolicy::Open`]).
    buckets: Vec<Bucket>,
    /// Per local node `(tick, emissions)` — the phase-3 emission
    /// counter behind [`BoundaryMsg::emit`], lazily reset on tick
    /// change.
    emit: Vec<(u64, u32)>,
    /// Resolved packets as `(packet id, record)`.
    pub(crate) done: Vec<(u32, PacketRecord)>,
    pub(crate) retransmissions: usize,
    pub(crate) duplicates_suppressed: usize,
    /// Events this shard processed (arrivals + retries + services +
    /// merged messages): the load-imbalance measure.
    pub(crate) events: u64,
    /// Barrier rounds participated in (equal across shards).
    pub(crate) rounds: u64,
    /// Rounds in which this shard had nothing scheduled at the round's
    /// tick — the conservative-synchronization overhead analogue of
    /// null messages.
    pub(crate) idle_rounds: u64,
    /// Merged messages whose sender lives on a different shard.
    pub(crate) boundary_in: u64,
    pub(crate) last_time: u64,
}

impl<'a> ShardCore<'a> {
    /// `ctx` configures the core (queue disciplines, bucket depths,
    /// store size) but is *not* retained: every phase method takes the
    /// current context as a parameter, which is what lets a churn
    /// driver swap the routed topology between epochs while queues,
    /// stores and cursors persist.
    pub(crate) fn new(
        ctx: &Shared<'_, '_>,
        id: u32,
        my_arrivals: Vec<u32>,
        owned: &'a [u32],
    ) -> Self {
        let cfg = ctx.cfg;
        ShardCore {
            id,
            my_arrivals,
            cursor: 0,
            owned,
            services: BinaryHeap::new(),
            retries: BinaryHeap::new(),
            store: (0..ctx.arrivals.len()).map(|_| None).collect(),
            nodes: owned
                .iter()
                .map(|_| NodeState {
                    queue: cfg.discipline.new_queue(),
                    busy: false,
                    peak: 0,
                    enqueue_seq: 0,
                    gauge: PressureGauge::new(),
                })
                .collect(),
            buckets: match cfg.admission {
                AdmissionPolicy::Open => Vec::new(),
                // Buckets start full: an initial burst up to the depth
                // is admitted before pacing engages.
                AdmissionPolicy::TokenBucket { burst, .. } => {
                    vec![
                        Bucket {
                            tokens: burst,
                            refilled: 0,
                        };
                        owned.len()
                    ]
                }
            },
            emit: vec![(0, 0); owned.len()],
            done: Vec::new(),
            retransmissions: 0,
            duplicates_suppressed: 0,
            events: 0,
            rounds: 0,
            idle_rounds: 0,
            boundary_in: 0,
            last_time: 0,
        }
    }

    /// The earliest tick at which this shard has anything scheduled
    /// (`u64::MAX` when fully drained): its vote in the barrier round's
    /// global-minimum computation.
    pub(crate) fn next_time(&self, ctx: &Shared<'_, '_>) -> u64 {
        let mut t = u64::MAX;
        if let Some(&idx) = self.my_arrivals.get(self.cursor) {
            t = t.min(ctx.arrivals[idx as usize].time);
        }
        if let Some(&Reverse((rt, _))) = self.retries.peek() {
            t = t.min(rt);
        }
        if let Some(&Reverse((st, _))) = self.services.peek() {
            t = t.min(st);
        }
        t
    }

    /// `(global node id, queue peak)` for every owned node.
    pub(crate) fn peaks(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.owned
            .iter()
            .zip(&self.nodes)
            .map(|(&v, st)| (v as usize, st.peak))
    }

    /// Phases 1–3 of tick `t`: arrivals, retries, then service
    /// completions. Successful forwards are pushed onto
    /// `outboxes[destination shard]` instead of being applied.
    pub(crate) fn phase_local(
        &mut self,
        ctx: &Shared<'_, '_>,
        t: u64,
        outboxes: &mut [Vec<BoundaryMsg>],
    ) {
        self.rounds += 1;
        if self.next_time(ctx) != t {
            self.idle_rounds += 1;
        }
        self.last_time = t;
        while let Some(&idx) = self.my_arrivals.get(self.cursor) {
            let a = ctx.arrivals[idx as usize];
            if a.time != t {
                break;
            }
            self.cursor += 1;
            self.events += 1;
            self.inject(ctx, idx as usize, a, t);
        }
        while let Some(&Reverse((rt, p))) = self.retries.peek() {
            if rt != t {
                break;
            }
            self.retries.pop();
            self.events += 1;
            self.retry(ctx, p as usize, t);
        }
        while let Some(&Reverse((st, u))) = self.services.peek() {
            if st != t {
                break;
            }
            self.services.pop();
            self.events += 1;
            self.service(ctx, u as usize, t, outboxes);
        }
    }

    /// Phase 4 of tick `t`: apply the forwards addressed to this shard.
    /// The `(sender, emit)` sort reconstructs the canonical order
    /// whatever concatenation order the driver delivered.
    pub(crate) fn phase_merge(
        &mut self,
        ctx: &Shared<'_, '_>,
        t: u64,
        mut inbox: Vec<BoundaryMsg>,
    ) {
        inbox.sort_unstable_by_key(|m| (m.sender, m.emit));
        for msg in inbox {
            self.events += 1;
            if ctx.shard_of[msg.sender as usize] != self.id {
                self.boundary_in += 1;
            }
            let p = msg.packet as usize;
            debug_assert!(self.store[p].is_none(), "packet {p} already present");
            self.store[p] = Some(msg.payload);
            self.arrive(ctx, p, msg.receiver as usize, t);
        }
    }

    fn round(&self, ctx: &Shared<'_, '_>, time: u64) -> usize {
        (time / ctx.cfg.ticks_per_round) as usize
    }

    fn local(&self, ctx: &Shared<'_, '_>, u: usize) -> usize {
        debug_assert_eq!(ctx.shard_of[u], self.id, "node {u} not owned here");
        ctx.local_of[u] as usize
    }

    /// Phase 1: a scheduled arrival is offered to its source node.
    fn inject(&mut self, ctx: &Shared<'_, '_>, p: usize, a: Arrival, time: u64) {
        self.store[p] = Some(Box::new(Packet {
            src: a.src,
            dst: a.dst,
            spawn: a.time,
            hops: 0,
            tx: 0,
            hop_attempt: 0,
            retx: 0,
            length: 0.0,
            holder: a.src,
            next_hop: usize::MAX,
            session: ctx.fw.new_session(),
            path: Vec::new(),
        }));
        // A source that has left the network cannot originate traffic;
        // its scheduled arrivals die at the (absent) radio.
        if !ctx.present(a.src, time) {
            return self.resolve(p, PacketOutcome::Dropped(DropCause::NodeDeparted), time);
        }
        if self.admit(ctx, a.src, time) {
            self.arrive(ctx, p, a.src, time);
        } else {
            self.resolve(p, PacketOutcome::Refused, time);
        }
    }

    /// Applies the admission policy to an arrival at source `src`.
    /// Deterministic: the decision depends only on the arrival schedule
    /// (tick and per-source order), never on network state.
    fn admit(&mut self, ctx: &Shared<'_, '_>, src: usize, time: u64) -> bool {
        match ctx.cfg.admission {
            AdmissionPolicy::Open => true,
            AdmissionPolicy::TokenBucket {
                ticks_per_token,
                burst,
            } => {
                let period = ticks_per_token.max(1);
                let bucket = &mut self.buckets[ctx.local_of[src] as usize];
                let credit = (time - bucket.refilled) / period;
                if credit > 0 {
                    bucket.tokens = (bucket.tokens + credit).min(burst);
                    // Advance only by whole periods so the remainder
                    // keeps accruing toward the next token.
                    bucket.refilled += credit * period;
                }
                if bucket.tokens > 0 {
                    bucket.tokens -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Ends packet `p`'s lifecycle. Taking the packet out of the store
    /// enforces resolve-exactly-once structurally: a second resolve (or
    /// one on a shard that doesn't hold the packet) has no packet to
    /// take.
    fn resolve(&mut self, p: usize, outcome: PacketOutcome, time: u64) {
        let pk = *self.store[p]
            .take()
            .expect("a packet resolves exactly once, on the shard holding it");
        self.done.push((
            p as u32,
            PacketRecord {
                src: pk.src,
                dst: pk.dst,
                spawn: pk.spawn,
                finish: time,
                hops: pk.hops,
                retries: pk.retx,
                length: pk.length,
                outcome,
                path: pk.path,
            },
        ));
    }

    /// Packet `p` is now held by node `u`: decide its next hop and join
    /// `u`'s transmit queue (or end its lifecycle).
    fn arrive(&mut self, ctx: &Shared<'_, '_>, p: usize, u: usize, time: u64) {
        let record_paths = ctx.cfg.record_paths;
        let crashed = ctx.faults.crashed(u, self.round(ctx, time));
        {
            let pk = self.store[p]
                .as_mut()
                .expect("arriving packet is held here");
            if record_paths {
                pk.path.push(u);
            }
            if !crashed {
                pk.holder = u;
                pk.hop_attempt = 0;
            }
        }
        if crashed {
            return self.resolve(p, PacketOutcome::Dropped(DropCause::NodeCrash), time);
        }
        // Churn: a transmission toward a node that has since departed is
        // sent into the void, and a packet whose destination has left
        // can never be delivered — both die here, before any forwarding
        // decision consults the (possibly stale) topology.
        let dst = self.store[p].as_ref().expect("held").dst;
        if !ctx.present(u, time) || !ctx.present(dst, time) {
            return self.resolve(p, PacketOutcome::Dropped(DropCause::NodeDeparted), time);
        }
        let fw = ctx.fw;
        let decision = {
            let pk = self.store[p].as_mut().expect("held");
            fw.decide(&mut pk.session, u, dst)
        };
        match decision {
            Decision::Arrived => self.resolve(p, PacketOutcome::Delivered, time),
            Decision::Stuck => self.resolve(p, PacketOutcome::Dropped(DropCause::Stuck), time),
            Decision::Forward(v) => {
                self.store[p].as_mut().expect("held").next_hop = v;
                self.enqueue(ctx, p, u, time);
            }
        }
    }

    /// Packet `p` (next hop already chosen) joins `u`'s transmit queue,
    /// subject to the capacity check — retransmissions pass through here
    /// too, competing with fresh traffic for the same slots.
    fn enqueue(&mut self, ctx: &Shared<'_, '_>, p: usize, u: usize, time: u64) {
        let lu = self.local(ctx, u);
        if self.nodes[lu].queue.len() >= ctx.cfg.queue_capacity {
            return self.resolve(p, PacketOutcome::Dropped(DropCause::QueueFull), time);
        }
        let dst = self.store[p]
            .as_ref()
            .expect("enqueued packet is held here")
            .dst;
        let remaining = ctx.udg.position(u).distance(ctx.udg.position(dst));
        let node = &mut self.nodes[lu];
        let enqueue_seq = node.enqueue_seq;
        node.enqueue_seq += 1;
        node.queue.push(QueuedPacket {
            id: p,
            dst,
            remaining,
            enqueue_seq,
        });
        let occupancy = node.queue.len();
        #[cfg(feature = "invariant-checks")]
        assert!(
            occupancy <= ctx.cfg.queue_capacity,
            "queue at node {u} exceeds capacity: {occupancy} > {}",
            ctx.cfg.queue_capacity
        );
        node.peak = node.peak.max(occupancy);
        if !node.busy {
            node.busy = true;
            self.services
                .push(Reverse((time + ctx.cfg.service_time, u as u32)));
        }
    }

    /// Phase 2: a retransmission backoff expired — the packet rejoins
    /// its holder's queue (unless the holder died while it waited).
    fn retry(&mut self, ctx: &Shared<'_, '_>, p: usize, time: u64) {
        let u = self.store[p]
            .as_ref()
            .expect("retrying packet is held here")
            .holder;
        if ctx.faults.crashed(u, self.round(ctx, time)) {
            return self.resolve(p, PacketOutcome::Dropped(DropCause::NodeCrash), time);
        }
        if !ctx.present(u, time) {
            return self.resolve(p, PacketOutcome::Dropped(DropCause::NodeDeparted), time);
        }
        self.enqueue(ctx, p, u, time);
    }

    /// Phase 3: node `u`'s radio finished a transmission slot — emit the
    /// head-of-line packet toward its chosen next hop. A successful
    /// transmission is *deferred* into `outboxes` rather than applied;
    /// everything else here touches only `u`'s own state and the
    /// packet's own fields.
    fn service(
        &mut self,
        ctx: &Shared<'_, '_>,
        u: usize,
        time: u64,
        outboxes: &mut [Vec<BoundaryMsg>],
    ) {
        let lu = self.local(ctx, u);
        if ctx.faults.crashed(u, self.round(ctx, time)) {
            // The node died with packets queued: they die with it.
            let victims = self.nodes[lu].queue.drain();
            for qp in victims {
                self.resolve(qp.id, PacketOutcome::Dropped(DropCause::NodeCrash), time);
            }
            self.nodes[lu].busy = false;
            return;
        }
        if !ctx.present(u, time) {
            // The node departed (churn) with packets queued: they leave
            // with it — same drain as a crash, different attribution.
            let victims = self.nodes[lu].queue.drain();
            for qp in victims {
                self.resolve(qp.id, PacketOutcome::Dropped(DropCause::NodeDeparted), time);
            }
            self.nodes[lu].busy = false;
            return;
        }
        let Some(qp) = self.nodes[lu].queue.pop() else {
            self.nodes[lu].busy = false;
            return;
        };
        if self.nodes[lu].queue.is_empty() {
            self.nodes[lu].busy = false;
        } else {
            self.services
                .push(Reverse((time + ctx.cfg.service_time, u as u32)));
        }
        // Work conservation: a node with queued packets always has a
        // service slot scheduled.
        debug_assert!(self.nodes[lu].busy || self.nodes[lu].queue.is_empty());
        let p = qp.id;
        let (v, attempt) = {
            let pk = self.store[p]
                .as_mut()
                .expect("serviced packet is held here");
            let v = pk.next_hop;
            let attempt = pk.tx;
            pk.tx += 1;
            if pk.hop_attempt > 0 {
                // This transmission slot is a link-layer retransmission.
                pk.retx += 1;
                self.retransmissions += 1;
            }
            (v, attempt)
        };
        let round = self.round(ctx, time);
        if ctx.faults.severed(u, v, round) || ctx.faults.drops_packet(p as u64, attempt) {
            if let Some(rel) = ctx.cfg.reliability {
                let hop_attempt = self.store[p].as_ref().expect("held").hop_attempt;
                if hop_attempt < rel.max_retries {
                    // Overload control: before committing to a retry,
                    // the sender reads its own queue pressure.
                    let mut backoff_factor = 1;
                    if let Some(ov) = ctx.cfg.overload {
                        let occupancy = self.nodes[lu].queue.len();
                        match self.nodes[lu].gauge.observe(occupancy, &ov) {
                            Pressure::Overloaded => {
                                // Shed: the retry would only deepen the
                                // overload. Not a retransmission — the
                                // frame is never re-sent.
                                return self.resolve(
                                    p,
                                    PacketOutcome::Dropped(DropCause::RetryShed),
                                    time,
                                );
                            }
                            Pressure::Congested => backoff_factor = ov.backoff_factor,
                            Pressure::Normal => {}
                        }
                    }
                    // The sender times out waiting for the ack, backs
                    // off, and re-queues the frame for the same hop.
                    let pk = self.store[p].as_mut().expect("held");
                    pk.hop_attempt += 1;
                    let delay = rel.congested_retry_delay(
                        pk.hop_attempt,
                        ctx.cfg.service_time,
                        backoff_factor,
                    );
                    debug_assert!(delay > 0, "retry delays keep phases 1-3 ahead of merges");
                    self.retries.push(Reverse((time + delay, p as u32)));
                    return;
                }
            }
            return self.resolve(p, PacketOutcome::Dropped(DropCause::LinkLoss), time);
        }
        if ctx.faults.duplicates_packet(p as u64, attempt) {
            // The receiver sees the frame twice (stale MAC retransmit);
            // per-packet identity deduplicates, the copy is only counted.
            self.duplicates_suppressed += 1;
        }
        let over_budget = {
            let pk = self.store[p].as_mut().expect("held");
            pk.hops += 1;
            pk.hops > ctx.cfg.max_hops
        };
        if over_budget {
            return self.resolve(p, PacketOutcome::Dropped(DropCause::HopLimit), time);
        }
        let hop_len = ctx.udg.position(u).distance(ctx.udg.position(v));
        let mut payload = self.store[p].take().expect("forwarded packet is held here");
        payload.length += hop_len;
        let emission = &mut self.emit[lu];
        if emission.0 != time {
            *emission = (time, 0);
        }
        let emit = emission.1;
        emission.1 += 1;
        outboxes[ctx.shard_of[v] as usize].push(BoundaryMsg {
            sender: u as u32,
            emit,
            packet: p as u32,
            receiver: v as u32,
            payload,
        });
    }
}

/// Folds the resolved packets and node peaks of all shards into the
/// aggregate report. Records are scattered back into arrival-schedule
/// order first, so the aggregation (and its tie-breaks) never sees the
/// shard layout.
pub(crate) fn aggregate(udg: &Graph, cores: Vec<ShardCore<'_>>) -> TrafficOutcome {
    let n = udg.node_count();
    let mut peaks = vec![0usize; n];
    let mut retransmissions = 0usize;
    let mut duplicates_suppressed = 0usize;
    let mut last_time = 0u64;
    let mut slots: Vec<Option<PacketRecord>> = Vec::new();
    for core in cores {
        if slots.is_empty() {
            slots = (0..core.store.len()).map(|_| None).collect();
        }
        retransmissions += core.retransmissions;
        duplicates_suppressed += core.duplicates_suppressed;
        last_time = last_time.max(core.last_time);
        for (v, peak) in core.peaks() {
            peaks[v] = peak;
        }
        for (id, rec) in core.done {
            let slot = &mut slots[id as usize];
            debug_assert!(slot.is_none(), "packet {id} resolved on two shards");
            *slot = Some(rec);
        }
    }
    let mut records = Vec::with_capacity(slots.len());
    let mut drops = DropCounts::default();
    let mut refused = 0usize;
    let mut latencies: Vec<u64> = Vec::new();
    let mut oracle = DistanceOracle::new(udg);
    let mut hop_stretch_sum = 0.0;
    let mut hop_stretch_max = 0.0f64;
    let mut len_stretch_sum = 0.0;
    let mut len_stretch_max = 0.0f64;
    let mut stretch_pairs = 0usize;
    for slot in slots {
        let rec = slot.expect("every offered packet resolves before the engine quiesces");
        match rec.outcome {
            PacketOutcome::Delivered => {
                // Latency from first enqueue (the arrival tick), not
                // from any retransmission: backoff waits are part of
                // the packet's measured delay.
                latencies.push(rec.finish - rec.spawn);
                if rec.src != rec.dst {
                    // Under churn the stretch baseline is the *static*
                    // home-position UDG; a pair the baseline does not
                    // connect (yet the evolving topology delivered)
                    // has no defined stretch and is skipped.
                    let (Some(best_hops), Some(best_len)) = (
                        oracle.hops(rec.src, rec.dst),
                        oracle.length(rec.src, rec.dst),
                    ) else {
                        records.push(rec);
                        continue;
                    };
                    let hs = f64::from(rec.hops) / f64::from(best_hops.max(1));
                    let ls = if best_len > 0.0 {
                        rec.length / best_len
                    } else {
                        1.0
                    };
                    hop_stretch_sum += hs;
                    hop_stretch_max = hop_stretch_max.max(hs);
                    len_stretch_sum += ls;
                    len_stretch_max = len_stretch_max.max(ls);
                    stretch_pairs += 1;
                }
            }
            PacketOutcome::Dropped(cause) => drops.record(cause),
            PacketOutcome::Refused => refused += 1,
        }
        records.push(rec);
    }
    latencies.sort_unstable();
    let percentile = |q: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            let rank = (q * latencies.len() as f64).ceil() as usize;
            latencies[rank.clamp(1, latencies.len()) - 1]
        }
    };
    let delivered = latencies.len();
    let peak_max = peaks.iter().copied().max().unwrap_or(0);
    let peak_sum: usize = peaks.iter().sum();
    let report = TrafficReport {
        offered: records.len(),
        delivered,
        drops,
        refused,
        retransmissions,
        duplicates_suppressed,
        latency_p50: percentile(0.5),
        latency_p99: percentile(0.99),
        latency_max: latencies.last().copied().unwrap_or(0),
        latency_mean: if delivered == 0 {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / delivered as f64
        },
        hop_stretch_avg: if stretch_pairs == 0 {
            0.0
        } else {
            hop_stretch_sum / stretch_pairs as f64
        },
        hop_stretch_max,
        length_stretch_avg: if stretch_pairs == 0 {
            0.0
        } else {
            len_stretch_sum / stretch_pairs as f64
        },
        length_stretch_max: len_stretch_max,
        queue_peak_max: peak_max,
        queue_peak_mean: if n == 0 {
            0.0
        } else {
            peak_sum as f64 / n as f64
        },
        duration: last_time,
    };
    debug_assert_eq!(
        report.offered,
        report.delivered + report.drops.total() + report.refused
    );
    #[cfg(feature = "invariant-checks")]
    assert_eq!(
        report.offered,
        report.delivered + report.drops.total() + report.refused,
        "packet conservation violated: offered != delivered + drops + refused"
    );
    TrafficOutcome {
        report,
        packets: records,
    }
}

/// Serves `arrivals` over the forwarding scheme and returns the measured
/// outcome.
///
/// `udg` supplies the shared node positions and the shortest-path
/// baseline for per-packet stretch; the forwarding scheme must route
/// over (sub)graphs of the same vertex set. The run is bit-reproducible:
/// the same inputs give the same [`TrafficOutcome`] on every invocation,
/// under any thread count, and — by the phase structure documented on
/// [`ShardCore`] — at any [`TrafficConfig::shards`] value.
///
/// # Panics
/// Panics if an arrival endpoint is out of bounds or
/// `cfg.ticks_per_round == 0`.
pub fn run(
    forwarding: &Forwarding<'_>,
    udg: &Graph,
    arrivals: &[Arrival],
    faults: &FaultPlan,
    cfg: &TrafficConfig,
) -> TrafficOutcome {
    ShardedEngine::new(cfg.shards).run(forwarding, udg, arrivals, faults, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use geospan_graph::Point;

    fn chain(len: usize) -> Graph {
        let pts: Vec<Point> = (0..len).map(|i| Point::new(i as f64, 0.0)).collect();
        let edges: Vec<(usize, usize)> = (1..len).map(|i| (i - 1, i)).collect();
        Graph::with_edges(pts, edges)
    }

    fn one_packet(src: usize, dst: usize) -> Vec<Arrival> {
        vec![Arrival { time: 0, src, dst }]
    }

    fn cfg_recording() -> TrafficConfig {
        TrafficConfig {
            record_paths: true,
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn single_packet_walks_the_chain() {
        let g = chain(5);
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 4),
            &FaultPlan::none(),
            &cfg_recording(),
        );
        assert_eq!(out.report.delivered, 1);
        assert_eq!(out.packets[0].path, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.packets[0].hops, 4);
        assert_eq!(out.packets[0].retries, 0);
        // One service slot per hop at service_time 1.
        assert_eq!(out.packets[0].latency(), 4);
        assert!((out.report.hop_stretch_avg - 1.0).abs() < 1e-12);
        assert!((out.report.length_stretch_avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contention_serializes_a_shared_radio() {
        let g = chain(3);
        // Two packets offered to node 0 at the same tick: the second
        // waits a full service slot behind the first at every hop.
        let arrivals = vec![
            Arrival {
                time: 0,
                src: 0,
                dst: 2,
            },
            Arrival {
                time: 0,
                src: 0,
                dst: 2,
            },
        ];
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &arrivals,
            &FaultPlan::none(),
            &TrafficConfig::default(),
        );
        assert_eq!(out.report.delivered, 2);
        let (a, b) = (&out.packets[0], &out.packets[1]);
        assert_eq!(a.latency(), 2);
        assert_eq!(b.latency(), 3, "head-of-line blocking costs one slot");
        assert_eq!(out.report.queue_peak_max, 2);
    }

    #[test]
    fn full_queues_drop_excess_load() {
        let g = chain(3);
        let arrivals: Vec<Arrival> = (0..5)
            .map(|_| Arrival {
                time: 0,
                src: 0,
                dst: 2,
            })
            .collect();
        let cfg = TrafficConfig {
            queue_capacity: 1,
            ..TrafficConfig::default()
        };
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &arrivals,
            &FaultPlan::none(),
            &cfg,
        );
        assert_eq!(out.report.delivered, 1);
        assert_eq!(out.report.drops.queue_full, 4);
        assert_eq!(out.report.queue_peak_max, 1);
    }

    #[test]
    fn crashed_nodes_kill_traffic_through_them() {
        let g = chain(4);
        let plan = FaultPlan::new(1).with_crash(1, 0);
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 3),
            &plan,
            &TrafficConfig::default(),
        );
        assert_eq!(out.report.delivered, 0);
        assert_eq!(out.report.drops.node_crash, 1);
    }

    #[test]
    fn mid_flow_crash_drops_queued_packets() {
        let g = chain(4);
        // Node 1 dies at round 2: the packet reaches it at t=5 and the
        // crash predates it.
        let plan = FaultPlan::new(1).with_crash(1, 2);
        let cfg = TrafficConfig {
            service_time: 5,
            ..TrafficConfig::default()
        };
        let out = run(&Forwarding::Greedy(&g), &g, &one_packet(0, 3), &plan, &cfg);
        assert_eq!(out.report.delivered, 0);
        assert_eq!(out.report.drops.node_crash, 1);
    }

    #[test]
    fn partitions_sever_links_while_active() {
        let g = chain(3);
        let plan = FaultPlan::new(0).with_partition(0..1_000, [0]);
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 2),
            &plan,
            &TrafficConfig::default(),
        );
        assert_eq!(out.report.drops.link_loss, 1);
        // After the partition heals, the same packet schedule delivers.
        let plan = FaultPlan::new(0).with_partition(0..1_000, [0]);
        let late = vec![Arrival {
            time: 2_000,
            src: 0,
            dst: 2,
        }];
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &late,
            &plan,
            &TrafficConfig::default(),
        );
        assert_eq!(out.report.delivered, 1);
    }

    #[test]
    fn hop_budget_bounds_packet_lifetime() {
        let g = chain(10);
        let cfg = TrafficConfig {
            max_hops: 3,
            ..TrafficConfig::default()
        };
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 9),
            &FaultPlan::none(),
            &cfg,
        );
        assert_eq!(out.report.drops.hop_limit, 1);
    }

    #[test]
    fn runs_are_reproducible() {
        let g = chain(8);
        let arrivals = Workload::bursty(4, 0.9, 300).generate(8, 11);
        let plan = FaultPlan::new(5).with_loss(0.1);
        for discipline in [
            Discipline::Fifo,
            Discipline::NearestFirst,
            Discipline::Drr { quantum: 1 },
        ] {
            for reliability in [None, Some(ReliabilityConfig::default())] {
                let cfg = TrafficConfig {
                    queue_capacity: 2,
                    discipline,
                    reliability,
                    ..TrafficConfig::default()
                };
                let a = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &cfg);
                let b = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &cfg);
                assert_eq!(a, b, "{discipline:?} retx={}", reliability.is_some());
                assert_eq!(
                    a.report.offered,
                    a.report.delivered + a.report.drops.total()
                );
            }
        }
    }

    #[test]
    fn retransmit_recovers_a_transient_partition() {
        let g = chain(3);
        // Link (0,1) severed for rounds 0..4: the first attempt at t=1
        // is lost; with retransmit the packet retries past the heal.
        let plan = || FaultPlan::new(0).with_partition(0..4, [0]);
        let without = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 2),
            &plan(),
            &TrafficConfig::default(),
        );
        assert_eq!(without.report.drops.link_loss, 1);
        assert_eq!(without.report.retransmissions, 0);

        let cfg = TrafficConfig {
            reliability: Some(ReliabilityConfig {
                max_retries: 3,
                ack_timeout: 2,
            }),
            record_paths: true,
            ..TrafficConfig::default()
        };
        let with = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 2),
            &plan(),
            &cfg,
        );
        assert_eq!(with.report.delivered, 1);
        assert!(with.report.retransmissions >= 1);
        assert_eq!(
            with.packets[0].retries as usize,
            with.report.retransmissions
        );
        assert_eq!(with.packets[0].path, vec![0, 1, 2]);
        // Latency includes the backoff waits, counted from first enqueue.
        assert!(with.packets[0].latency() > without.packets[0].latency());
    }

    #[test]
    fn retransmit_budget_is_bounded_and_attributed_to_link_loss() {
        let g = chain(2);
        // Permanently severed link: every retry fails, the budget runs
        // out, and the drop is attributed to LinkLoss.
        let plan = FaultPlan::new(0).with_partition(0..1_000_000, [0]);
        let cfg = TrafficConfig {
            reliability: Some(ReliabilityConfig {
                max_retries: 4,
                ack_timeout: 1,
            }),
            ..TrafficConfig::default()
        };
        let out = run(&Forwarding::Greedy(&g), &g, &one_packet(0, 1), &plan, &cfg);
        assert_eq!(out.report.delivered, 0);
        assert_eq!(out.report.drops.link_loss, 1);
        assert_eq!(out.report.retransmissions, 4, "exactly the retry budget");
        assert_eq!(out.packets[0].retries, 4);
    }

    #[test]
    fn duplicated_deliveries_are_suppressed_and_counted() {
        let g = chain(3);
        let plan = FaultPlan::new(9).with_duplication(1.0);
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 2),
            &plan,
            &cfg_recording(),
        );
        // Delivered exactly once despite every hop duplicating.
        assert_eq!(out.report.delivered, 1);
        assert_eq!(out.report.duplicates_suppressed, 2, "one per hop");
        assert_eq!(out.packets[0].path, vec![0, 1, 2]);
    }

    /// A star: sources 1..=k all route to sink 0 through no relay (the
    /// sink is adjacent to everyone), so node positions put every
    /// source one hop out.
    fn flood_arrivals(sources: usize, per_source: usize) -> Vec<Arrival> {
        let mut arrivals = Vec::new();
        for t in 0..per_source {
            for s in 1..=sources {
                arrivals.push(Arrival {
                    time: t as u64,
                    src: s,
                    dst: 0,
                });
            }
        }
        arrivals
    }

    #[test]
    fn overloaded_sender_sheds_retries() {
        let g = chain(2);
        // Link permanently severed; node 0's queue stays saturated by a
        // flood, so with watermarks every retry decision sees occupancy
        // >= high and sheds.
        let plan = FaultPlan::new(0).with_partition(0..1_000_000, [0]);
        let arrivals: Vec<Arrival> = (0..30)
            .map(|i| Arrival {
                time: i / 3,
                src: 0,
                dst: 1,
            })
            .collect();
        let base = TrafficConfig {
            queue_capacity: 8,
            reliability: Some(ReliabilityConfig {
                max_retries: 4,
                ack_timeout: 1,
            }),
            ..TrafficConfig::default()
        };
        let without = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &base);
        assert_eq!(without.report.drops.retry_shed, 0);
        assert!(without.report.retransmissions > 0);

        let cfg = TrafficConfig {
            overload: Some(OverloadConfig {
                high_watermark: 1,
                low_watermark: 0,
                backoff_factor: 4,
            }),
            ..base
        };
        let with = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &cfg);
        assert!(with.report.drops.retry_shed > 0, "watermark shed retries");
        assert!(
            with.report.retransmissions < without.report.retransmissions,
            "shedding replaces most retransmissions ({} vs {})",
            with.report.retransmissions,
            without.report.retransmissions
        );
        assert_eq!(
            with.report.offered,
            with.report.delivered + with.report.drops.total() + with.report.refused
        );
    }

    #[test]
    fn congested_sender_inflates_backoff() {
        let g = chain(3);
        // Three packets at node 0 while link (0,1) is severed until
        // tick 35 (service_time 10, so pops land at t=10/20/30):
        //  * t=10 — pop p0, loss, occupancy 2 ≥ high 2: overloaded,
        //    p0 is shed (and the congested flag latches);
        //  * t=20 — pop p1, loss, occupancy 1: congested band, the
        //    retry backoff is inflated ×4 (40 ticks instead of 10);
        //  * t=30 — pop p2, loss, occupancy 0 ≤ low 0: normal retry.
        // After the heal both survivors deliver; p1's inflated backoff
        // shows up as strictly larger latency than the fixed-budget
        // run gives it.
        let plan = || FaultPlan::new(0).with_partition(0..35, [0]);
        let arrivals: Vec<Arrival> = (0..3)
            .map(|_| Arrival {
                time: 0,
                src: 0,
                dst: 2,
            })
            .collect();
        let base = TrafficConfig {
            service_time: 10,
            reliability: Some(ReliabilityConfig {
                max_retries: 6,
                ack_timeout: 1,
            }),
            ..TrafficConfig::default()
        };
        let without = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan(), &base);
        assert_eq!(without.report.delivered, 3);
        let cfg = TrafficConfig {
            overload: Some(OverloadConfig {
                high_watermark: 2,
                low_watermark: 0,
                backoff_factor: 4,
            }),
            ..base
        };
        let with = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan(), &cfg);
        assert_eq!(with.report.drops.retry_shed, 1, "p0 shed while overloaded");
        assert_eq!(with.report.delivered, 2);
        assert_eq!(with.packets[1].outcome, PacketOutcome::Delivered);
        assert!(
            with.packets[1].latency() > without.packets[1].latency(),
            "inflated backoff stretches p1's latency ({} vs {})",
            with.packets[1].latency(),
            without.packets[1].latency()
        );
    }

    #[test]
    fn token_bucket_paces_sources_deterministically() {
        let g = chain(2);
        // 10 back-to-back arrivals at tick 0, then one every 2 ticks.
        let mut arrivals: Vec<Arrival> = (0..10)
            .map(|_| Arrival {
                time: 0,
                src: 0,
                dst: 1,
            })
            .collect();
        arrivals.extend((1..=5).map(|i| Arrival {
            time: 10 * i,
            src: 0,
            dst: 1,
        }));
        let cfg = TrafficConfig {
            admission: AdmissionPolicy::TokenBucket {
                ticks_per_token: 10,
                burst: 3,
            },
            ..TrafficConfig::default()
        };
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &arrivals,
            &FaultPlan::none(),
            &cfg,
        );
        // Burst admits 3 of the 10 simultaneous arrivals; the paced
        // tail regains exactly one token per arrival.
        assert_eq!(out.report.refused, 7);
        assert_eq!(out.report.delivered, 8);
        assert_eq!(out.report.admitted(), 8);
        assert_eq!(out.report.offered, 15);
        assert_eq!(out.report.admitted_delivery_ratio(), 1.0);
        for (i, rec) in out.packets.iter().enumerate() {
            let expect = if (3..10).contains(&i) {
                PacketOutcome::Refused
            } else {
                PacketOutcome::Delivered
            };
            assert_eq!(rec.outcome, expect, "packet {i}");
        }
        // Refusals are not drops.
        assert_eq!(out.report.drops.total(), 0);
    }

    #[test]
    fn zero_burst_refuses_everything() {
        let g = chain(2);
        let cfg = TrafficConfig {
            admission: AdmissionPolicy::TokenBucket {
                ticks_per_token: 1,
                burst: 0,
            },
            ..TrafficConfig::default()
        };
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 1),
            &FaultPlan::none(),
            &cfg,
        );
        assert_eq!(out.report.refused, 1);
        assert_eq!(out.report.delivered, 0);
        assert_eq!(out.report.delivery_ratio(), 0.0);
        assert_eq!(out.report.admitted_delivery_ratio(), 1.0);
    }

    #[test]
    fn overload_disabled_is_bit_identical_to_fixed_budget_retransmit() {
        // `overload: None` + `admission: Open` must not perturb a
        // single event: same outcome struct, bit for bit, on a lossy
        // contended run.
        let g = chain(8);
        let arrivals = flood_arrivals(7, 40);
        let plan = FaultPlan::new(5).with_loss(0.2);
        let cfg = TrafficConfig {
            queue_capacity: 4,
            reliability: Some(ReliabilityConfig::default()),
            ..TrafficConfig::default()
        };
        let a = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &cfg);
        let b = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.report.drops.retry_shed, 0);
        assert_eq!(a.report.refused, 0);
    }

    #[test]
    fn loss_decisions_replay_from_packet_and_attempt_alone() {
        // The fault-roll coordinates must be exactly (packet id,
        // transmission attempt): replaying the per-hop decisions with
        // no knowledge of the route, the queues, or the event order
        // predicts every LinkLoss drop point. This is the property
        // that makes sharded execution (and any engine reordering)
        // bit-identical.
        let g = chain(8);
        let arrivals = Workload::uniform(0.8, 400).generate(8, 3);
        let plan = FaultPlan::new(5).with_loss(0.15);
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &arrivals,
            &plan,
            &TrafficConfig::default(),
        );
        let mut losses = 0;
        for (p, rec) in out.packets.iter().enumerate() {
            assert_eq!(rec.retries, 0, "no retries without reliability");
            if rec.outcome == PacketOutcome::Dropped(DropCause::LinkLoss) {
                // Without reliability, attempt == hops at every roll:
                // the first failing attempt is the drop hop.
                let mut hops = 0u32;
                while !plan.drops_packet(p as u64, hops) {
                    hops += 1;
                }
                assert_eq!(hops, rec.hops, "packet {p} dropped at a different hop");
                losses += 1;
            }
        }
        assert_eq!(losses, out.report.drops.link_loss);
        assert!(losses > 0, "the seed should lose something");
    }
}
