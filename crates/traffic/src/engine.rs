//! The discrete-event core: event queue, per-node transmit queues, and
//! the packet lifecycle (enqueue → transmit → deliver/drop, with
//! optional per-hop retransmission).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use geospan_graph::paths::DistanceOracle;
use geospan_graph::Graph;
use geospan_sim::{FaultPlan, OverloadConfig, ReliabilityConfig};

use crate::queue::{Discipline, Pressure, PressureGauge, QueueDiscipline, QueuedPacket};
use crate::report::{DropCause, DropCounts, PacketOutcome, PacketRecord, TrafficReport};
use crate::workload::Arrival;
use crate::{Decision, Forwarding, Session};

/// Source admission control: whether a scheduled arrival is allowed to
/// enter the network at all.
///
/// Refused packets resolve as [`PacketOutcome::Refused`] and are counted
/// in [`TrafficReport::refused`], separately from drops — a refusal
/// spends no network resources, so pacing sources during overload
/// trades offered load for delivery of what *is* admitted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Every scheduled arrival enters the network (the historical
    /// behavior).
    #[default]
    Open,
    /// A deterministic per-source token bucket: each source holds up to
    /// `burst` tokens, regains one every `ticks_per_token` ticks, and
    /// spends one per admitted packet. Arrivals finding an empty bucket
    /// are refused. Buckets start full, refill lazily on arrival, and
    /// use pure integer arithmetic, so admission decisions are a
    /// deterministic function of the arrival schedule alone.
    TokenBucket {
        /// Ticks per regained token (`0` is treated as `1`). A source's
        /// sustained admitted rate is `1 / ticks_per_token` packets per
        /// tick.
        ticks_per_token: u64,
        /// Bucket depth: the largest back-to-back burst a source may
        /// inject (`0` refuses everything).
        burst: u64,
    },
}

/// Engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Per-node transmit queue capacity; `usize::MAX` for unbounded
    /// queues.
    pub queue_capacity: usize,
    /// Ticks a node's radio takes to transmit one packet (the service
    /// time of the transmit queue).
    pub service_time: u64,
    /// Per-packet hop budget (drops with [`DropCause::HopLimit`] when
    /// exceeded).
    pub max_hops: u32,
    /// Engine ticks per [`FaultPlan`] round: crash times and partition
    /// windows configured in rounds activate at `round * ticks_per_round`.
    pub ticks_per_round: u64,
    /// Record every packet's node path (costs memory; used by tests and
    /// diagnostics).
    pub record_paths: bool,
    /// The scheduling policy of every node's transmit queue.
    pub discipline: Discipline,
    /// Per-hop link-layer retransmission: a transmission lost to noise
    /// or an active partition is retried after a backoff
    /// ([`ReliabilityConfig::retry_delay`]) up to
    /// [`ReliabilityConfig::max_retries`] times, the retry re-entering
    /// the sender's queue in competition with fresh traffic. `None`
    /// drops on first loss (the original engine behavior).
    pub reliability: Option<ReliabilityConfig>,
    /// Congestion-adaptive overload control for the retransmit layer:
    /// sender-queue watermarks with hysteresis (see [`OverloadConfig`]
    /// and [`PressureGauge`](crate::PressureGauge)). At each retry
    /// decision the sender reads its own queue occupancy — an
    /// overloaded sender sheds the retry ([`DropCause::RetryShed`]); a
    /// congested one inflates the backoff by
    /// [`OverloadConfig::backoff_factor`]. Only meaningful with
    /// `reliability` set; `None` keeps the engine bit-identical to the
    /// fixed-budget retransmit scheme.
    pub overload: Option<OverloadConfig>,
    /// Source admission control. [`AdmissionPolicy::Open`] (the
    /// default) admits every scheduled arrival and is bit-identical to
    /// the historical engine.
    pub admission: AdmissionPolicy,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            queue_capacity: 64,
            service_time: 1,
            max_hops: 10_000,
            ticks_per_round: 1,
            record_paths: false,
            discipline: Discipline::Fifo,
            reliability: None,
            overload: None,
            admission: AdmissionPolicy::Open,
        }
    }
}

/// Everything a traffic run produced: the aggregate report plus the
/// per-packet records it was computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficOutcome {
    /// Aggregate measurements.
    pub report: TrafficReport,
    /// One record per offered packet, in arrival-schedule order.
    pub packets: Vec<PacketRecord>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A packet (by schedule index) is offered to its source node.
    Arrival(usize),
    /// A node's radio finishes transmitting its head-of-line packet.
    Service(usize),
    /// A packet's retransmission backoff expired: it rejoins its
    /// holder's transmit queue.
    Retry(usize),
}

/// Events order by `(time, seq)`: `seq` is a global insertion counter,
/// so simultaneous events fire in creation order and the run is
/// deterministic. (`kind` participates in the derived `Ord` only after
/// `seq`, which is unique — it never actually decides.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

struct Packet {
    src: usize,
    dst: usize,
    spawn: u64,
    hops: u32,
    /// Total transmissions performed (hops + retransmissions): the
    /// fault-roll attempt coordinate, so every retry sees an
    /// independent loss roll. Without reliability this equals `hops`
    /// at every roll, preserving the historical per-event decisions.
    tx: u32,
    /// Retransmissions already spent on the current hop.
    hop_attempt: u32,
    /// Retransmission transmissions performed over the whole lifecycle.
    retx: u32,
    length: f64,
    /// Node currently holding the packet (where a retry re-enqueues).
    holder: usize,
    next_hop: usize,
    session: Session,
    path: Vec<usize>,
}

struct NodeState {
    queue: Box<dyn QueueDiscipline>,
    busy: bool,
    peak: usize,
    /// Watermark hysteresis state (only consulted when
    /// [`TrafficConfig::overload`] is set).
    gauge: PressureGauge,
}

/// Per-source token-bucket state for
/// [`AdmissionPolicy::TokenBucket`]: lazily refilled on arrival with
/// pure integer arithmetic.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: u64,
    /// Tick of the last accounted refill boundary (refill remainders
    /// carry forward exactly).
    refilled: u64,
}

struct Engine<'a, 'g> {
    fw: &'a Forwarding<'g>,
    udg: &'a Graph,
    faults: &'a FaultPlan,
    cfg: &'a TrafficConfig,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    /// Global enqueue counter: the disciplines' deterministic
    /// tie-breaker.
    enqueue_seq: u64,
    packets: Vec<Packet>,
    fates: Vec<Option<(PacketOutcome, u64)>>,
    nodes: Vec<NodeState>,
    /// Per-source token buckets, allocated only under
    /// [`AdmissionPolicy::TokenBucket`].
    buckets: Vec<Bucket>,
    retransmissions: usize,
    duplicates_suppressed: usize,
    last_time: u64,
}

/// Serves `arrivals` over the forwarding scheme and returns the measured
/// outcome.
///
/// `udg` supplies the shared node positions and the shortest-path
/// baseline for per-packet stretch; the forwarding scheme must route
/// over (sub)graphs of the same vertex set. The run is bit-reproducible:
/// the same inputs give the same [`TrafficOutcome`] on every invocation
/// and under any thread count (the engine itself is single-threaded).
///
/// # Panics
/// Panics if an arrival endpoint is out of bounds or
/// `cfg.ticks_per_round == 0`.
pub fn run(
    forwarding: &Forwarding<'_>,
    udg: &Graph,
    arrivals: &[Arrival],
    faults: &FaultPlan,
    cfg: &TrafficConfig,
) -> TrafficOutcome {
    assert!(cfg.ticks_per_round > 0, "ticks_per_round must be positive");
    let n = udg.node_count();
    let packets = arrivals
        .iter()
        .map(|a| {
            assert!(a.src < n && a.dst < n, "arrival endpoints out of bounds");
            Packet {
                src: a.src,
                dst: a.dst,
                spawn: a.time,
                hops: 0,
                tx: 0,
                hop_attempt: 0,
                retx: 0,
                length: 0.0,
                holder: a.src,
                next_hop: usize::MAX,
                session: forwarding.new_session(),
                path: Vec::new(),
            }
        })
        .collect::<Vec<_>>();
    let mut engine = Engine {
        fw: forwarding,
        udg,
        faults,
        cfg,
        heap: BinaryHeap::with_capacity(arrivals.len()),
        seq: 0,
        enqueue_seq: 0,
        fates: vec![None; packets.len()],
        packets,
        nodes: (0..n)
            .map(|_| NodeState {
                queue: cfg.discipline.new_queue(),
                busy: false,
                peak: 0,
                gauge: PressureGauge::new(),
            })
            .collect(),
        buckets: match cfg.admission {
            AdmissionPolicy::Open => Vec::new(),
            AdmissionPolicy::TokenBucket { burst, .. } => {
                // Buckets start full: an initial burst up to the depth
                // is admitted before pacing engages.
                vec![
                    Bucket {
                        tokens: burst,
                        refilled: 0,
                    };
                    n
                ]
            }
        },
        retransmissions: 0,
        duplicates_suppressed: 0,
        last_time: 0,
    };
    for (p, a) in arrivals.iter().enumerate() {
        engine.push(a.time, EventKind::Arrival(p));
    }
    while let Some(Reverse(ev)) = engine.heap.pop() {
        engine.last_time = ev.time;
        match ev.kind {
            EventKind::Arrival(p) => {
                let src = engine.packets[p].src;
                if engine.admit(src, ev.time) {
                    engine.arrive(p, src, ev.time);
                } else {
                    engine.resolve(p, PacketOutcome::Refused, ev.time);
                }
            }
            EventKind::Service(u) => engine.service(u, ev.time),
            EventKind::Retry(p) => engine.retry(p, ev.time),
        }
    }
    engine.finish()
}

impl Engine<'_, '_> {
    fn round(&self, time: u64) -> usize {
        (time / self.cfg.ticks_per_round) as usize
    }

    fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
    }

    /// Applies the admission policy to an arrival at source `src`.
    /// Deterministic: the decision depends only on the arrival schedule
    /// (tick and per-source order), never on network state.
    fn admit(&mut self, src: usize, time: u64) -> bool {
        match self.cfg.admission {
            AdmissionPolicy::Open => true,
            AdmissionPolicy::TokenBucket {
                ticks_per_token,
                burst,
            } => {
                let period = ticks_per_token.max(1);
                let bucket = &mut self.buckets[src];
                let credit = (time - bucket.refilled) / period;
                if credit > 0 {
                    bucket.tokens = (bucket.tokens + credit).min(burst);
                    // Advance only by whole periods so the remainder
                    // keeps accruing toward the next token.
                    bucket.refilled += credit * period;
                }
                if bucket.tokens > 0 {
                    bucket.tokens -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn resolve(&mut self, p: usize, outcome: PacketOutcome, time: u64) {
        debug_assert!(self.fates[p].is_none(), "packet resolved twice");
        #[cfg(feature = "invariant-checks")]
        assert!(self.fates[p].is_none(), "packet {p} resolved twice");
        self.fates[p] = Some((outcome, time));
    }

    /// Packet `p` is now held by node `u`: decide its next hop and join
    /// `u`'s transmit queue (or end its lifecycle).
    fn arrive(&mut self, p: usize, u: usize, time: u64) {
        if self.cfg.record_paths {
            self.packets[p].path.push(u);
        }
        if self.faults.crashed(u, self.round(time)) {
            return self.resolve(p, PacketOutcome::Dropped(DropCause::NodeCrash), time);
        }
        self.packets[p].holder = u;
        self.packets[p].hop_attempt = 0;
        let dst = self.packets[p].dst;
        let fw = self.fw;
        let decision = fw.decide(&mut self.packets[p].session, u, dst);
        match decision {
            Decision::Arrived => self.resolve(p, PacketOutcome::Delivered, time),
            Decision::Stuck => self.resolve(p, PacketOutcome::Dropped(DropCause::Stuck), time),
            Decision::Forward(v) => {
                self.packets[p].next_hop = v;
                self.enqueue(p, u, time);
            }
        }
    }

    /// Packet `p` (next hop already chosen) joins `u`'s transmit queue,
    /// subject to the capacity check — retransmissions pass through here
    /// too, competing with fresh traffic for the same slots.
    fn enqueue(&mut self, p: usize, u: usize, time: u64) {
        if self.nodes[u].queue.len() >= self.cfg.queue_capacity {
            return self.resolve(p, PacketOutcome::Dropped(DropCause::QueueFull), time);
        }
        let dst = self.packets[p].dst;
        let remaining = self.udg.position(u).distance(self.udg.position(dst));
        let enqueue_seq = self.enqueue_seq;
        self.enqueue_seq += 1;
        self.nodes[u].queue.push(QueuedPacket {
            id: p,
            dst,
            remaining,
            enqueue_seq,
        });
        let occupancy = self.nodes[u].queue.len();
        #[cfg(feature = "invariant-checks")]
        assert!(
            occupancy <= self.cfg.queue_capacity,
            "queue at node {u} exceeds capacity: {occupancy} > {}",
            self.cfg.queue_capacity
        );
        self.nodes[u].peak = self.nodes[u].peak.max(occupancy);
        if !self.nodes[u].busy {
            self.nodes[u].busy = true;
            self.push(time + self.cfg.service_time, EventKind::Service(u));
        }
    }

    /// A retransmission backoff expired: the packet rejoins its holder's
    /// queue (unless the holder died while it waited).
    fn retry(&mut self, p: usize, time: u64) {
        let u = self.packets[p].holder;
        if self.faults.crashed(u, self.round(time)) {
            return self.resolve(p, PacketOutcome::Dropped(DropCause::NodeCrash), time);
        }
        self.enqueue(p, u, time);
    }

    /// Node `u`'s radio finished a transmission slot: emit the
    /// head-of-line packet toward its chosen next hop.
    fn service(&mut self, u: usize, time: u64) {
        if self.faults.crashed(u, self.round(time)) {
            // The node died with packets queued: they die with it.
            for qp in self.nodes[u].queue.drain() {
                self.resolve(qp.id, PacketOutcome::Dropped(DropCause::NodeCrash), time);
            }
            self.nodes[u].busy = false;
            return;
        }
        let Some(qp) = self.nodes[u].queue.pop() else {
            self.nodes[u].busy = false;
            return;
        };
        if self.nodes[u].queue.is_empty() {
            self.nodes[u].busy = false;
        } else {
            self.push(time + self.cfg.service_time, EventKind::Service(u));
        }
        // Work conservation: a node with queued packets always has a
        // service slot scheduled.
        debug_assert!(self.nodes[u].busy || self.nodes[u].queue.is_empty());
        let p = qp.id;
        let v = self.packets[p].next_hop;
        let attempt = self.packets[p].tx;
        self.packets[p].tx += 1;
        if self.packets[p].hop_attempt > 0 {
            // This transmission slot is a link-layer retransmission.
            self.retransmissions += 1;
            self.packets[p].retx += 1;
        }
        let round = self.round(time);
        if self.faults.severed(u, v, round) || self.faults.drops_delivery(u, v, p as u64, attempt) {
            if let Some(rel) = self.cfg.reliability {
                if self.packets[p].hop_attempt < rel.max_retries {
                    // Overload control: before committing to a retry,
                    // the sender reads its own queue pressure.
                    let mut backoff_factor = 1;
                    if let Some(ov) = self.cfg.overload {
                        let occupancy = self.nodes[u].queue.len();
                        match self.nodes[u].gauge.observe(occupancy, &ov) {
                            Pressure::Overloaded => {
                                // Shed: the retry would only deepen the
                                // overload. Not a retransmission — the
                                // frame is never re-sent.
                                return self.resolve(
                                    p,
                                    PacketOutcome::Dropped(DropCause::RetryShed),
                                    time,
                                );
                            }
                            Pressure::Congested => backoff_factor = ov.backoff_factor,
                            Pressure::Normal => {}
                        }
                    }
                    // The sender times out waiting for the ack, backs
                    // off, and re-queues the frame for the same hop.
                    self.packets[p].hop_attempt += 1;
                    let delay = rel.congested_retry_delay(
                        self.packets[p].hop_attempt,
                        self.cfg.service_time,
                        backoff_factor,
                    );
                    self.push(time + delay, EventKind::Retry(p));
                    return;
                }
            }
            return self.resolve(p, PacketOutcome::Dropped(DropCause::LinkLoss), time);
        }
        if self.faults.duplicates_delivery(u, v, p as u64, attempt) {
            // The receiver sees the frame twice (stale MAC retransmit);
            // per-packet identity deduplicates, the copy is only counted.
            self.duplicates_suppressed += 1;
        }
        self.packets[p].hops += 1;
        if self.packets[p].hops > self.cfg.max_hops {
            return self.resolve(p, PacketOutcome::Dropped(DropCause::HopLimit), time);
        }
        let hop_len = self.udg.position(u).distance(self.udg.position(v));
        self.packets[p].length += hop_len;
        self.arrive(p, v, time);
    }

    /// Folds the per-packet fates into the aggregate report.
    fn finish(self) -> TrafficOutcome {
        let Engine {
            udg,
            packets,
            fates,
            nodes,
            retransmissions,
            duplicates_suppressed,
            last_time,
            ..
        } = self;
        let mut records = Vec::with_capacity(packets.len());
        let mut drops = DropCounts::default();
        let mut refused = 0usize;
        let mut latencies: Vec<u64> = Vec::new();
        let mut oracle = DistanceOracle::new(udg);
        let mut hop_stretch_sum = 0.0;
        let mut hop_stretch_max = 0.0f64;
        let mut len_stretch_sum = 0.0;
        let mut len_stretch_max = 0.0f64;
        let mut stretch_pairs = 0usize;
        for (pk, fate) in packets.into_iter().zip(fates) {
            let (outcome, finish) =
                fate.expect("every offered packet resolves before the event queue drains");
            match outcome {
                PacketOutcome::Delivered => {
                    // Latency from first enqueue (the arrival tick), not
                    // from any retransmission: backoff waits are part of
                    // the packet's measured delay.
                    latencies.push(finish - pk.spawn);
                    if pk.src != pk.dst {
                        let best_hops = oracle
                            .hops(pk.src, pk.dst)
                            .expect("delivered packets have connected endpoints");
                        let best_len = oracle
                            .length(pk.src, pk.dst)
                            .expect("delivered packets have connected endpoints");
                        let hs = f64::from(pk.hops) / f64::from(best_hops.max(1));
                        let ls = if best_len > 0.0 {
                            pk.length / best_len
                        } else {
                            1.0
                        };
                        hop_stretch_sum += hs;
                        hop_stretch_max = hop_stretch_max.max(hs);
                        len_stretch_sum += ls;
                        len_stretch_max = len_stretch_max.max(ls);
                        stretch_pairs += 1;
                    }
                }
                PacketOutcome::Dropped(cause) => drops.record(cause),
                PacketOutcome::Refused => refused += 1,
            }
            records.push(PacketRecord {
                src: pk.src,
                dst: pk.dst,
                spawn: pk.spawn,
                finish,
                hops: pk.hops,
                retries: pk.retx,
                length: pk.length,
                outcome,
                path: pk.path,
            });
        }
        latencies.sort_unstable();
        let percentile = |q: f64| -> u64 {
            if latencies.is_empty() {
                0
            } else {
                let rank = (q * latencies.len() as f64).ceil() as usize;
                latencies[rank.clamp(1, latencies.len()) - 1]
            }
        };
        let delivered = latencies.len();
        let peak_max = nodes.iter().map(|s| s.peak).max().unwrap_or(0);
        let peak_sum: usize = nodes.iter().map(|s| s.peak).sum();
        let report = TrafficReport {
            offered: records.len(),
            delivered,
            drops,
            refused,
            retransmissions,
            duplicates_suppressed,
            latency_p50: percentile(0.5),
            latency_p99: percentile(0.99),
            latency_max: latencies.last().copied().unwrap_or(0),
            latency_mean: if delivered == 0 {
                0.0
            } else {
                latencies.iter().sum::<u64>() as f64 / delivered as f64
            },
            hop_stretch_avg: if stretch_pairs == 0 {
                0.0
            } else {
                hop_stretch_sum / stretch_pairs as f64
            },
            hop_stretch_max,
            length_stretch_avg: if stretch_pairs == 0 {
                0.0
            } else {
                len_stretch_sum / stretch_pairs as f64
            },
            length_stretch_max: len_stretch_max,
            queue_peak_max: peak_max,
            queue_peak_mean: if nodes.is_empty() {
                0.0
            } else {
                peak_sum as f64 / nodes.len() as f64
            },
            duration: last_time,
        };
        debug_assert_eq!(
            report.offered,
            report.delivered + report.drops.total() + report.refused
        );
        #[cfg(feature = "invariant-checks")]
        assert_eq!(
            report.offered,
            report.delivered + report.drops.total() + report.refused,
            "packet conservation violated: offered != delivered + drops + refused"
        );
        TrafficOutcome {
            report,
            packets: records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use geospan_graph::Point;

    fn chain(len: usize) -> Graph {
        let pts: Vec<Point> = (0..len).map(|i| Point::new(i as f64, 0.0)).collect();
        let edges: Vec<(usize, usize)> = (1..len).map(|i| (i - 1, i)).collect();
        Graph::with_edges(pts, edges)
    }

    fn one_packet(src: usize, dst: usize) -> Vec<Arrival> {
        vec![Arrival { time: 0, src, dst }]
    }

    fn cfg_recording() -> TrafficConfig {
        TrafficConfig {
            record_paths: true,
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn single_packet_walks_the_chain() {
        let g = chain(5);
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 4),
            &FaultPlan::none(),
            &cfg_recording(),
        );
        assert_eq!(out.report.delivered, 1);
        assert_eq!(out.packets[0].path, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.packets[0].hops, 4);
        assert_eq!(out.packets[0].retries, 0);
        // One service slot per hop at service_time 1.
        assert_eq!(out.packets[0].latency(), 4);
        assert!((out.report.hop_stretch_avg - 1.0).abs() < 1e-12);
        assert!((out.report.length_stretch_avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contention_serializes_a_shared_radio() {
        let g = chain(3);
        // Two packets offered to node 0 at the same tick: the second
        // waits a full service slot behind the first at every hop.
        let arrivals = vec![
            Arrival {
                time: 0,
                src: 0,
                dst: 2,
            },
            Arrival {
                time: 0,
                src: 0,
                dst: 2,
            },
        ];
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &arrivals,
            &FaultPlan::none(),
            &TrafficConfig::default(),
        );
        assert_eq!(out.report.delivered, 2);
        let (a, b) = (&out.packets[0], &out.packets[1]);
        assert_eq!(a.latency(), 2);
        assert_eq!(b.latency(), 3, "head-of-line blocking costs one slot");
        assert_eq!(out.report.queue_peak_max, 2);
    }

    #[test]
    fn full_queues_drop_excess_load() {
        let g = chain(3);
        let arrivals: Vec<Arrival> = (0..5)
            .map(|_| Arrival {
                time: 0,
                src: 0,
                dst: 2,
            })
            .collect();
        let cfg = TrafficConfig {
            queue_capacity: 1,
            ..TrafficConfig::default()
        };
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &arrivals,
            &FaultPlan::none(),
            &cfg,
        );
        assert_eq!(out.report.delivered, 1);
        assert_eq!(out.report.drops.queue_full, 4);
        assert_eq!(out.report.queue_peak_max, 1);
    }

    #[test]
    fn crashed_nodes_kill_traffic_through_them() {
        let g = chain(4);
        let plan = FaultPlan::new(1).with_crash(1, 0);
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 3),
            &plan,
            &TrafficConfig::default(),
        );
        assert_eq!(out.report.delivered, 0);
        assert_eq!(out.report.drops.node_crash, 1);
    }

    #[test]
    fn mid_flow_crash_drops_queued_packets() {
        let g = chain(4);
        // Node 1 dies at round 2: the packet reaches it at t=1 and is
        // still queued when the crash hits.
        let plan = FaultPlan::new(1).with_crash(1, 2);
        let cfg = TrafficConfig {
            service_time: 5,
            ..TrafficConfig::default()
        };
        let out = run(&Forwarding::Greedy(&g), &g, &one_packet(0, 3), &plan, &cfg);
        assert_eq!(out.report.delivered, 0);
        assert_eq!(out.report.drops.node_crash, 1);
    }

    #[test]
    fn partitions_sever_links_while_active() {
        let g = chain(3);
        let plan = FaultPlan::new(0).with_partition(0..1_000, [0]);
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 2),
            &plan,
            &TrafficConfig::default(),
        );
        assert_eq!(out.report.drops.link_loss, 1);
        // After the partition heals, the same packet schedule delivers.
        let plan = FaultPlan::new(0).with_partition(0..1_000, [0]);
        let late = vec![Arrival {
            time: 2_000,
            src: 0,
            dst: 2,
        }];
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &late,
            &plan,
            &TrafficConfig::default(),
        );
        assert_eq!(out.report.delivered, 1);
    }

    #[test]
    fn hop_budget_bounds_packet_lifetime() {
        let g = chain(10);
        let cfg = TrafficConfig {
            max_hops: 3,
            ..TrafficConfig::default()
        };
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 9),
            &FaultPlan::none(),
            &cfg,
        );
        assert_eq!(out.report.drops.hop_limit, 1);
    }

    #[test]
    fn runs_are_reproducible() {
        let g = chain(8);
        let arrivals = Workload::bursty(4, 0.9, 300).generate(8, 11);
        let plan = FaultPlan::new(5).with_loss(0.1);
        for discipline in [
            Discipline::Fifo,
            Discipline::NearestFirst,
            Discipline::Drr { quantum: 1 },
        ] {
            for reliability in [None, Some(ReliabilityConfig::default())] {
                let cfg = TrafficConfig {
                    queue_capacity: 2,
                    discipline,
                    reliability,
                    ..TrafficConfig::default()
                };
                let a = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &cfg);
                let b = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &cfg);
                assert_eq!(a, b, "{discipline:?} retx={}", reliability.is_some());
                assert_eq!(
                    a.report.offered,
                    a.report.delivered + a.report.drops.total()
                );
            }
        }
    }

    #[test]
    fn retransmit_recovers_a_transient_partition() {
        let g = chain(3);
        // Link (0,1) severed for rounds 0..4: the first attempt at t=1
        // is lost; with retransmit the packet retries past the heal.
        let plan = || FaultPlan::new(0).with_partition(0..4, [0]);
        let without = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 2),
            &plan(),
            &TrafficConfig::default(),
        );
        assert_eq!(without.report.drops.link_loss, 1);
        assert_eq!(without.report.retransmissions, 0);

        let cfg = TrafficConfig {
            reliability: Some(ReliabilityConfig {
                max_retries: 3,
                ack_timeout: 2,
            }),
            record_paths: true,
            ..TrafficConfig::default()
        };
        let with = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 2),
            &plan(),
            &cfg,
        );
        assert_eq!(with.report.delivered, 1);
        assert!(with.report.retransmissions >= 1);
        assert_eq!(
            with.packets[0].retries as usize,
            with.report.retransmissions
        );
        assert_eq!(with.packets[0].path, vec![0, 1, 2]);
        // Latency includes the backoff waits, counted from first enqueue.
        assert!(with.packets[0].latency() > without.packets[0].latency());
    }

    #[test]
    fn retransmit_budget_is_bounded_and_attributed_to_link_loss() {
        let g = chain(2);
        // Permanently severed link: every retry fails, the budget runs
        // out, and the drop is attributed to LinkLoss.
        let plan = FaultPlan::new(0).with_partition(0..1_000_000, [0]);
        let cfg = TrafficConfig {
            reliability: Some(ReliabilityConfig {
                max_retries: 4,
                ack_timeout: 1,
            }),
            ..TrafficConfig::default()
        };
        let out = run(&Forwarding::Greedy(&g), &g, &one_packet(0, 1), &plan, &cfg);
        assert_eq!(out.report.delivered, 0);
        assert_eq!(out.report.drops.link_loss, 1);
        assert_eq!(out.report.retransmissions, 4, "exactly the retry budget");
        assert_eq!(out.packets[0].retries, 4);
    }

    #[test]
    fn duplicated_deliveries_are_suppressed_and_counted() {
        let g = chain(3);
        let plan = FaultPlan::new(9).with_duplication(1.0);
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 2),
            &plan,
            &cfg_recording(),
        );
        // Delivered exactly once despite every hop duplicating.
        assert_eq!(out.report.delivered, 1);
        assert_eq!(out.report.duplicates_suppressed, 2, "one per hop");
        assert_eq!(out.packets[0].path, vec![0, 1, 2]);
    }

    /// A star: sources 1..=k all route to sink 0 through no relay (the
    /// sink is adjacent to everyone), so node positions put every
    /// source one hop out.
    fn flood_arrivals(sources: usize, per_source: usize) -> Vec<Arrival> {
        let mut arrivals = Vec::new();
        for t in 0..per_source {
            for s in 1..=sources {
                arrivals.push(Arrival {
                    time: t as u64,
                    src: s,
                    dst: 0,
                });
            }
        }
        arrivals
    }

    #[test]
    fn overloaded_sender_sheds_retries() {
        let g = chain(2);
        // Link permanently severed; node 0's queue stays saturated by a
        // flood, so with watermarks every retry decision sees occupancy
        // >= high and sheds.
        let plan = FaultPlan::new(0).with_partition(0..1_000_000, [0]);
        let arrivals: Vec<Arrival> = (0..30)
            .map(|i| Arrival {
                time: i / 3,
                src: 0,
                dst: 1,
            })
            .collect();
        let base = TrafficConfig {
            queue_capacity: 8,
            reliability: Some(ReliabilityConfig {
                max_retries: 4,
                ack_timeout: 1,
            }),
            ..TrafficConfig::default()
        };
        let without = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &base);
        assert_eq!(without.report.drops.retry_shed, 0);
        assert!(without.report.retransmissions > 0);

        let cfg = TrafficConfig {
            overload: Some(OverloadConfig {
                high_watermark: 1,
                low_watermark: 0,
                backoff_factor: 4,
            }),
            ..base
        };
        let with = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &cfg);
        assert!(with.report.drops.retry_shed > 0, "watermark shed retries");
        assert!(
            with.report.retransmissions < without.report.retransmissions,
            "shedding replaces most retransmissions ({} vs {})",
            with.report.retransmissions,
            without.report.retransmissions
        );
        assert_eq!(
            with.report.offered,
            with.report.delivered + with.report.drops.total() + with.report.refused
        );
    }

    #[test]
    fn congested_sender_inflates_backoff() {
        let g = chain(3);
        // Three packets at node 0 while link (0,1) is severed until
        // tick 35 (service_time 10, so pops land at t=10/20/30):
        //  * t=10 — pop p0, loss, occupancy 2 ≥ high 2: overloaded,
        //    p0 is shed (and the congested flag latches);
        //  * t=20 — pop p1, loss, occupancy 1: congested band, the
        //    retry backoff is inflated ×4 (40 ticks instead of 10);
        //  * t=30 — pop p2, loss, occupancy 0 ≤ low 0: normal retry.
        // After the heal both survivors deliver; p1's inflated backoff
        // shows up as strictly larger latency than the fixed-budget
        // run gives it.
        let plan = || FaultPlan::new(0).with_partition(0..35, [0]);
        let arrivals: Vec<Arrival> = (0..3)
            .map(|_| Arrival {
                time: 0,
                src: 0,
                dst: 2,
            })
            .collect();
        let base = TrafficConfig {
            service_time: 10,
            reliability: Some(ReliabilityConfig {
                max_retries: 6,
                ack_timeout: 1,
            }),
            ..TrafficConfig::default()
        };
        let without = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan(), &base);
        assert_eq!(without.report.delivered, 3);
        let cfg = TrafficConfig {
            overload: Some(OverloadConfig {
                high_watermark: 2,
                low_watermark: 0,
                backoff_factor: 4,
            }),
            ..base
        };
        let with = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan(), &cfg);
        assert_eq!(with.report.drops.retry_shed, 1, "p0 shed while overloaded");
        assert_eq!(with.report.delivered, 2);
        assert_eq!(with.packets[1].outcome, PacketOutcome::Delivered);
        assert!(
            with.packets[1].latency() > without.packets[1].latency(),
            "inflated backoff stretches p1's latency ({} vs {})",
            with.packets[1].latency(),
            without.packets[1].latency()
        );
    }

    #[test]
    fn token_bucket_paces_sources_deterministically() {
        let g = chain(2);
        // 10 back-to-back arrivals at tick 0, then one every 2 ticks.
        let mut arrivals: Vec<Arrival> = (0..10)
            .map(|_| Arrival {
                time: 0,
                src: 0,
                dst: 1,
            })
            .collect();
        arrivals.extend((1..=5).map(|i| Arrival {
            time: 10 * i,
            src: 0,
            dst: 1,
        }));
        let cfg = TrafficConfig {
            admission: AdmissionPolicy::TokenBucket {
                ticks_per_token: 10,
                burst: 3,
            },
            ..TrafficConfig::default()
        };
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &arrivals,
            &FaultPlan::none(),
            &cfg,
        );
        // Burst admits 3 of the 10 simultaneous arrivals; the paced
        // tail regains exactly one token per arrival.
        assert_eq!(out.report.refused, 7);
        assert_eq!(out.report.delivered, 8);
        assert_eq!(out.report.admitted(), 8);
        assert_eq!(out.report.offered, 15);
        assert_eq!(out.report.admitted_delivery_ratio(), 1.0);
        for (i, rec) in out.packets.iter().enumerate() {
            let expect = if (3..10).contains(&i) {
                PacketOutcome::Refused
            } else {
                PacketOutcome::Delivered
            };
            assert_eq!(rec.outcome, expect, "packet {i}");
        }
        // Refusals are not drops.
        assert_eq!(out.report.drops.total(), 0);
    }

    #[test]
    fn zero_burst_refuses_everything() {
        let g = chain(2);
        let cfg = TrafficConfig {
            admission: AdmissionPolicy::TokenBucket {
                ticks_per_token: 1,
                burst: 0,
            },
            ..TrafficConfig::default()
        };
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &one_packet(0, 1),
            &FaultPlan::none(),
            &cfg,
        );
        assert_eq!(out.report.refused, 1);
        assert_eq!(out.report.delivered, 0);
        assert_eq!(out.report.delivery_ratio(), 0.0);
        assert_eq!(out.report.admitted_delivery_ratio(), 1.0);
    }

    #[test]
    fn overload_disabled_is_bit_identical_to_fixed_budget_retransmit() {
        // `overload: None` + `admission: Open` must not perturb a
        // single event: same outcome struct, bit for bit, as the PR-4
        // configuration on a lossy contended run.
        let g = chain(8);
        let arrivals = flood_arrivals(7, 40);
        let plan = FaultPlan::new(5).with_loss(0.2);
        let cfg = TrafficConfig {
            queue_capacity: 4,
            reliability: Some(ReliabilityConfig::default()),
            ..TrafficConfig::default()
        };
        let a = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &cfg);
        let b = run(&Forwarding::Greedy(&g), &g, &arrivals, &plan, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.report.drops.retry_shed, 0);
        assert_eq!(a.report.refused, 0);
    }

    #[test]
    fn default_config_is_bit_identical_to_the_pre_reliability_engine() {
        // The attempt coordinate of the fault rolls must stay `hops`
        // when reliability is off, so existing seeded artifacts
        // (results/traffic_load.csv) are unchanged by the retransmit
        // machinery.
        let g = chain(8);
        let arrivals = Workload::uniform(0.8, 400).generate(8, 3);
        let plan = FaultPlan::new(5).with_loss(0.15);
        let out = run(
            &Forwarding::Greedy(&g),
            &g,
            &arrivals,
            &plan,
            &TrafficConfig::default(),
        );
        // Replay the per-hop loss decisions with attempt == hops.
        for (p, rec) in out.packets.iter().enumerate() {
            assert_eq!(rec.retries, 0, "no retries without reliability");
            if rec.outcome == PacketOutcome::Dropped(DropCause::LinkLoss) {
                // The failing roll used attempt == hops at drop time.
                let mut u = rec.src as i64;
                let step: i64 = if rec.dst > rec.src { 1 } else { -1 };
                let mut hops = 0u32;
                loop {
                    let v = u + step; // greedy on a chain walks toward dst
                    if plan.drops_delivery(u as usize, v as usize, p as u64, hops) {
                        break;
                    }
                    hops += 1;
                    u = v;
                }
                assert_eq!(hops, rec.hops, "packet {p} dropped at a different hop");
            }
        }
    }
}
