//! Pluggable per-node transmit-queue scheduling.
//!
//! Every node owns one [`QueueDiscipline`]: the policy that decides
//! which queued packet its radio transmits next. The engine interacts
//! with the queue only through this trait, so scheduling policies are
//! swappable without touching the event loop. Three disciplines ship:
//!
//! * [`Fifo`] — first-come-first-served (the original engine behavior);
//! * [`NearestFirst`] — priority by remaining Euclidean distance to the
//!   destination: packets closest to finishing transmit first
//!   (SRPT-style), which trades tail latency of far packets for faster
//!   drain of almost-done ones;
//! * [`DeficitRoundRobin`] — per-destination fair queueing: flows (one
//!   per destination) are served round-robin, `quantum` packets per
//!   visit, so a hotspot sink cannot starve cross traffic sharing a
//!   relay.
//!
//! All three are strictly deterministic: ties are broken by a global
//! enqueue sequence number, never by iteration order of a hash map.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use geospan_sim::OverloadConfig;

/// The pressure state a [`PressureGauge`] reports for one sender queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pressure {
    /// Occupancy has drained to the low watermark (or overload control
    /// never engaged): retransmit behaves exactly as the fixed-budget
    /// scheme.
    Normal,
    /// Occupancy previously hit the high watermark and has not yet
    /// drained to the low watermark: retries are scheduled with
    /// inflated backoff.
    Congested,
    /// Occupancy is at or above the high watermark right now: retries
    /// are shed.
    Overloaded,
}

/// Hysteresis state machine over one node's transmit-queue occupancy,
/// driving the congestion-adaptive retransmit rules of
/// [`OverloadConfig`].
///
/// The gauge is observed (not sampled on a clock): the engine calls
/// [`PressureGauge::observe`] with the current occupancy at each retry
/// decision. Crossing `high_watermark` latches the congested flag;
/// only draining to `low_watermark` clears it — so a queue oscillating
/// just under the high watermark keeps its retries inflated instead of
/// flapping between behaviors.
#[derive(Debug, Clone, Copy, Default)]
pub struct PressureGauge {
    congested: bool,
}

impl PressureGauge {
    /// A gauge in the normal state.
    pub fn new() -> Self {
        PressureGauge::default()
    }

    /// Updates the hysteresis state for the given occupancy and returns
    /// the pressure level the caller should act on.
    pub fn observe(&mut self, occupancy: usize, cfg: &OverloadConfig) -> Pressure {
        if occupancy >= cfg.high_watermark {
            self.congested = true;
            Pressure::Overloaded
        } else if occupancy <= cfg.low_watermark {
            self.congested = false;
            Pressure::Normal
        } else if self.congested {
            Pressure::Congested
        } else {
            Pressure::Normal
        }
    }
}

/// A packet waiting in a node's transmit queue, with the keys the
/// disciplines schedule by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedPacket {
    /// Index of the packet in the engine's packet table.
    pub id: usize,
    /// The packet's final destination (the DRR flow key).
    pub dst: usize,
    /// Euclidean distance from the queuing node to the destination
    /// (the priority key; smaller transmits first).
    pub remaining: f64,
    /// Global enqueue counter: the deterministic tie-breaker, and the
    /// FIFO order itself.
    pub enqueue_seq: u64,
}

/// A per-node transmit-queue scheduling policy.
///
/// Implementations must be **work-conserving** — [`QueueDiscipline::pop`]
/// returns `Some` whenever the queue is non-empty — and **lossless** —
/// every pushed packet is eventually popped (or drained); the engine
/// enforces capacity *before* pushing. Determinism is part of the
/// contract: the pop order must be a pure function of the push sequence.
pub trait QueueDiscipline: std::fmt::Debug + Send {
    /// Adds a packet to the queue.
    fn push(&mut self, packet: QueuedPacket);

    /// Removes and returns the next packet to transmit, or `None` when
    /// the queue is empty.
    fn pop(&mut self) -> Option<QueuedPacket>;

    /// Number of queued packets.
    fn len(&self) -> usize;

    /// True when no packet is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the queue, returning the packets in an arbitrary but
    /// deterministic order (used when the owning node crashes).
    fn drain(&mut self) -> Vec<QueuedPacket>;
}

/// Which [`QueueDiscipline`] each node runs, carried by
/// [`TrafficConfig`](crate::TrafficConfig).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Discipline {
    /// First-come-first-served.
    #[default]
    Fifo,
    /// Smallest remaining distance to destination first.
    NearestFirst,
    /// Per-destination deficit round robin with the given quantum
    /// (packets served per flow visit; `0` is treated as `1`).
    Drr {
        /// Packets a flow may send per round-robin visit.
        quantum: u32,
    },
}

impl Discipline {
    /// A short label for reports and CSV rows.
    pub fn label(&self) -> &'static str {
        match self {
            Discipline::Fifo => "fifo",
            Discipline::NearestFirst => "priority",
            Discipline::Drr { .. } => "drr",
        }
    }

    /// Instantiates one node's queue.
    pub fn new_queue(&self) -> Box<dyn QueueDiscipline> {
        match *self {
            Discipline::Fifo => Box::new(Fifo::new()),
            Discipline::NearestFirst => Box::new(NearestFirst::new()),
            Discipline::Drr { quantum } => Box::new(DeficitRoundRobin::new(quantum.max(1))),
        }
    }

    /// Parses a CLI/CSV label (`fifo`, `priority`, `drr`).
    pub fn parse(label: &str) -> Option<Discipline> {
        match label {
            "fifo" => Some(Discipline::Fifo),
            "priority" => Some(Discipline::NearestFirst),
            "drr" => Some(Discipline::Drr { quantum: 1 }),
            _ => None,
        }
    }
}

/// First-come-first-served: the baseline discipline.
#[derive(Debug, Default)]
pub struct Fifo {
    queue: VecDeque<QueuedPacket>,
}

impl Fifo {
    /// An empty FIFO queue.
    pub fn new() -> Self {
        Fifo::default()
    }
}

impl QueueDiscipline for Fifo {
    fn push(&mut self, packet: QueuedPacket) {
        self.queue.push_back(packet);
    }

    fn pop(&mut self) -> Option<QueuedPacket> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn drain(&mut self) -> Vec<QueuedPacket> {
        self.queue.drain(..).collect()
    }
}

/// Heap entry ordered by `(remaining asc, enqueue_seq asc)`; the
/// `BinaryHeap` is a max-heap, so the `Ord` is reversed.
#[derive(Debug, Clone, Copy)]
struct PrioEntry(QueuedPacket);

impl PartialEq for PrioEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for PrioEntry {}

impl PartialOrd for PrioEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PrioEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the max-heap then pops smallest remaining first,
        // with the enqueue sequence as a total-order tie-break (equal
        // keys pop in FIFO order).
        other
            .0
            .remaining
            .total_cmp(&self.0.remaining)
            .then(other.0.enqueue_seq.cmp(&self.0.enqueue_seq))
    }
}

/// Priority by remaining distance: the queued packet whose destination
/// is Euclidean-closest to this node transmits first.
#[derive(Debug, Default)]
pub struct NearestFirst {
    heap: BinaryHeap<PrioEntry>,
}

impl NearestFirst {
    /// An empty priority queue.
    pub fn new() -> Self {
        NearestFirst::default()
    }
}

impl QueueDiscipline for NearestFirst {
    fn push(&mut self, packet: QueuedPacket) {
        self.heap.push(PrioEntry(packet));
    }

    fn pop(&mut self) -> Option<QueuedPacket> {
        self.heap.pop().map(|e| e.0)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn drain(&mut self) -> Vec<QueuedPacket> {
        // Deterministic drain order: priority order.
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push(e.0);
        }
        out
    }
}

/// Per-destination deficit round robin: one FIFO flow per destination,
/// served cyclically with `quantum` packets per visit. All packets cost
/// one unit, so a flow transmits at most `quantum` back-to-back before
/// yielding — no destination waits more than
/// `(active_flows - 1) * quantum` services between its own.
#[derive(Debug)]
pub struct DeficitRoundRobin {
    quantum: u32,
    /// Per-destination FIFO sub-queues (kept allocated when empty).
    flows: BTreeMap<usize, VecDeque<QueuedPacket>>,
    /// Destinations with queued packets, in round-robin order.
    active: VecDeque<usize>,
    /// Remaining credit of the flow at the front of `active`.
    deficit: u32,
    len: usize,
}

impl DeficitRoundRobin {
    /// An empty DRR queue with the given per-visit quantum (≥ 1).
    pub fn new(quantum: u32) -> Self {
        DeficitRoundRobin {
            quantum: quantum.max(1),
            flows: BTreeMap::new(),
            active: VecDeque::new(),
            deficit: 0,
            len: 0,
        }
    }
}

impl QueueDiscipline for DeficitRoundRobin {
    fn push(&mut self, packet: QueuedPacket) {
        let flow = self.flows.entry(packet.dst).or_default();
        if flow.is_empty() {
            // Newly active flow joins the back of the rotation; a flow
            // that drained lost its turn and its leftover credit.
            self.active.push_back(packet.dst);
            if self.active.len() == 1 {
                self.deficit = self.quantum;
            }
        }
        flow.push_back(packet);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<QueuedPacket> {
        let &dst = self.active.front()?;
        let flow = self.flows.get_mut(&dst).expect("active flow exists");
        let packet = flow.pop_front().expect("active flow is non-empty");
        self.len -= 1;
        self.deficit -= 1;
        if flow.is_empty() {
            // Flow drained: leaves the rotation entirely.
            self.active.pop_front();
            self.deficit = self.quantum;
        } else if self.deficit == 0 {
            // Quantum spent: rotate to the back of the ring.
            let d = self.active.pop_front().expect("front exists");
            self.active.push_back(d);
            self.deficit = self.quantum;
        }
        Some(packet)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn drain(&mut self) -> Vec<QueuedPacket> {
        // Deterministic drain order: keep serving the rotation.
        let mut out = Vec::with_capacity(self.len);
        while let Some(p) = self.pop() {
            out.push(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp(id: usize, dst: usize, remaining: f64, seq: u64) -> QueuedPacket {
        QueuedPacket {
            id,
            dst,
            remaining,
            enqueue_seq: seq,
        }
    }

    fn pop_ids(q: &mut dyn QueueDiscipline) -> Vec<usize> {
        let mut out = Vec::new();
        while let Some(p) = q.pop() {
            out.push(p.id);
        }
        out
    }

    #[test]
    fn fifo_pops_in_push_order() {
        let mut q = Fifo::new();
        for i in 0..5 {
            q.push(qp(i, 0, 1.0, i as u64));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(pop_ids(&mut q), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn nearest_first_orders_by_remaining_then_fifo() {
        let mut q = NearestFirst::new();
        q.push(qp(0, 9, 5.0, 0));
        q.push(qp(1, 9, 1.0, 1));
        q.push(qp(2, 9, 3.0, 2));
        q.push(qp(3, 9, 1.0, 3)); // ties with packet 1: FIFO between them
        assert_eq!(pop_ids(&mut q), vec![1, 3, 2, 0]);
    }

    #[test]
    fn nearest_first_equals_fifo_on_equal_keys() {
        let mut prio = NearestFirst::new();
        let mut fifo = Fifo::new();
        for i in 0..20 {
            let p = qp(i, 4, 2.5, i as u64);
            prio.push(p);
            fifo.push(p);
        }
        assert_eq!(pop_ids(&mut prio), pop_ids(&mut fifo));
    }

    #[test]
    fn drr_round_robins_across_destinations() {
        let mut q = DeficitRoundRobin::new(1);
        // Flow A (dst 0): ids 0..3; flow B (dst 1): ids 10..13 — pushed
        // A-first in a burst, served alternately.
        for i in 0..3 {
            q.push(qp(i, 0, 1.0, i as u64));
        }
        for i in 0..3 {
            q.push(qp(10 + i, 1, 1.0, 10 + i as u64));
        }
        assert_eq!(pop_ids(&mut q), vec![0, 10, 1, 11, 2, 12]);
    }

    #[test]
    fn drr_quantum_serves_bursts_per_visit() {
        let mut q = DeficitRoundRobin::new(2);
        for i in 0..4 {
            q.push(qp(i, 0, 1.0, i as u64));
        }
        for i in 0..4 {
            q.push(qp(10 + i, 1, 1.0, 10 + i as u64));
        }
        assert_eq!(pop_ids(&mut q), vec![0, 1, 10, 11, 2, 3, 12, 13]);
    }

    #[test]
    fn drr_single_flow_is_fifo() {
        let mut q = DeficitRoundRobin::new(3);
        for i in 0..7 {
            q.push(qp(i, 5, 1.0, i as u64));
        }
        assert_eq!(pop_ids(&mut q), vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn drr_reactivated_flow_rejoins_at_the_back() {
        let mut q = DeficitRoundRobin::new(1);
        q.push(qp(0, 0, 1.0, 0));
        q.push(qp(1, 1, 1.0, 1));
        assert_eq!(q.pop().unwrap().id, 0); // flow 0 drains, leaves ring
        q.push(qp(2, 0, 1.0, 2)); // flow 0 reactivates behind flow 1
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn drains_are_complete_and_deterministic() {
        for kind in [
            Discipline::Fifo,
            Discipline::NearestFirst,
            Discipline::Drr { quantum: 2 },
        ] {
            let mut a = kind.new_queue();
            let mut b = kind.new_queue();
            for i in 0..9 {
                let p = qp(i, i % 3, (i % 4) as f64, i as u64);
                a.push(p);
                b.push(p);
            }
            let da: Vec<usize> = a.drain().iter().map(|p| p.id).collect();
            let db: Vec<usize> = b.drain().iter().map(|p| p.id).collect();
            assert_eq!(da, db, "{kind:?} drain not deterministic");
            let mut sorted = da.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..9).collect::<Vec<_>>(), "{kind:?} lost packets");
            assert!(a.is_empty());
            assert_eq!(a.len(), 0);
        }
    }

    #[test]
    fn pressure_gauge_hysteresis() {
        let cfg = OverloadConfig {
            high_watermark: 8,
            low_watermark: 2,
            backoff_factor: 4,
        };
        let mut g = PressureGauge::new();
        // Below high, never congested: normal.
        assert_eq!(g.observe(5, &cfg), Pressure::Normal);
        assert_eq!(g.observe(7, &cfg), Pressure::Normal);
        // Hits high: overloaded, and the congested flag latches.
        assert_eq!(g.observe(8, &cfg), Pressure::Overloaded);
        assert_eq!(g.observe(12, &cfg), Pressure::Overloaded);
        // Drains under high but not to low: still congested.
        assert_eq!(g.observe(7, &cfg), Pressure::Congested);
        assert_eq!(g.observe(3, &cfg), Pressure::Congested);
        // Reaches low: normal again, flag cleared.
        assert_eq!(g.observe(2, &cfg), Pressure::Normal);
        assert_eq!(g.observe(7, &cfg), Pressure::Normal, "flag was cleared");
        // Re-latches on the next high crossing.
        assert_eq!(g.observe(9, &cfg), Pressure::Overloaded);
        assert_eq!(g.observe(4, &cfg), Pressure::Congested);
    }

    #[test]
    fn pressure_gauge_degenerate_watermarks() {
        // high == low: the gauge flaps between overloaded and normal
        // with no congested band, but never wedges.
        let cfg = OverloadConfig {
            high_watermark: 4,
            low_watermark: 4,
            backoff_factor: 2,
        };
        let mut g = PressureGauge::new();
        assert_eq!(g.observe(4, &cfg), Pressure::Overloaded);
        assert_eq!(g.observe(3, &cfg), Pressure::Normal);
        assert_eq!(g.observe(5, &cfg), Pressure::Overloaded);
    }

    #[test]
    fn labels_round_trip() {
        for kind in [
            Discipline::Fifo,
            Discipline::NearestFirst,
            Discipline::Drr { quantum: 1 },
        ] {
            assert_eq!(Discipline::parse(kind.label()), Some(kind));
        }
        assert_eq!(Discipline::parse("warp"), None);
        assert_eq!(Discipline::default(), Discipline::Fifo);
    }
}
