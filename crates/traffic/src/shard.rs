//! Spatially sharded execution of the traffic engine under conservative
//! synchronization.
//!
//! The field is partitioned into spatial regions ([`ShardMap`]): each
//! shard owns a set of nodes, the packets currently held by those
//! nodes, and the event sources that touch them. Shards advance in
//! *barrier rounds*: every shard votes the earliest tick it has work
//! for, the global minimum `T` becomes the round's safe horizon, every
//! shard executes its node-local phases of tick `T`, and the forwards
//! they produced are exchanged through per-`(source shard, destination
//! shard)` channels and merged in a canonical order (see
//! [`crate::engine::ShardCore`] for the phase structure and the
//! determinism argument).
//!
//! Lockstep rounds are the degenerate — and here, necessary — form of
//! conservative synchronization: a transmission completed at tick `T`
//! is *received* at tick `T` (links add no latency beyond the sender's
//! service time), so the lookahead across any cut link is zero and no
//! shard may run ahead of another by even one tick. The round barrier
//! is exactly the null-message protocol specialized to zero lookahead;
//! the price is paid in idle shard-rounds
//! ([`RunStats::idle_shard_rounds`]) rather than null-message traffic.
//!
//! Determinism is unconditional: any shard count, any thread count,
//! any mailbox arrival order produces bit-identical
//! [`TrafficOutcome`]s, because every cross-shard effect is applied in
//! `(sender node, emission index)` order and every node-local decision
//! keys on schedule- or node-local coordinates alone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use geospan_graph::Graph;
use geospan_sim::FaultPlan;
use serde::Serialize;

use crate::engine::{aggregate, BoundaryMsg, ShardCore, Shared, TrafficConfig, TrafficOutcome};
use crate::workload::Arrival;
use crate::Forwarding;

/// A spatial partition of the node set into shards.
///
/// Nodes are binned into a coarse grid over the field's bounding box,
/// ordered by `(cell, node id)`, and cut into contiguous runs of equal
/// size — so shards are spatially coherent (boundary traffic stays
/// near the cell seams) *and* balanced by node count. The map is a
/// pure function of the node positions and the shard count; which map
/// is used never affects results (only which core does the work), but
/// a deterministic one keeps the load split reproducible too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    shard_of: Vec<u32>,
    local_of: Vec<u32>,
    owned: Vec<Vec<u32>>,
}

impl ShardMap {
    /// Partitions `points` into `shards` spatial shards (clamped to at
    /// least 1). With more shards than nodes, the surplus shards own
    /// no nodes and simply idle through every round.
    pub fn spatial(points: &[geospan_graph::Point], shards: usize) -> ShardMap {
        let shards = shards.max(1);
        let n = points.len();
        let side = (shards as f64).sqrt().ceil() as usize;
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let width = (max_x - min_x).max(f64::MIN_POSITIVE);
        let height = (max_y - min_y).max(f64::MIN_POSITIVE);
        let cell = |p: &geospan_graph::Point| -> usize {
            let cx = (((p.x - min_x) / width) * side as f64) as usize;
            let cy = (((p.y - min_y) / height) * side as f64) as usize;
            cy.min(side - 1) * side + cx.min(side - 1)
        };
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&v| (cell(&points[v as usize]), v));
        let mut shard_of = vec![0u32; n];
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for (rank, &v) in order.iter().enumerate() {
            let s = rank * shards / n;
            shard_of[v as usize] = s as u32;
            owned[s].push(v);
        }
        let mut local_of = vec![0u32; n];
        for nodes in &mut owned {
            nodes.sort_unstable();
            for (i, &v) in nodes.iter().enumerate() {
                local_of[v as usize] = i as u32;
            }
        }
        ShardMap {
            shards,
            shard_of,
            local_of,
            owned,
        }
    }

    /// Number of shards (including empty ones).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Node id → owning shard.
    pub fn shard_of(&self) -> &[u32] {
        &self.shard_of
    }

    /// The (ascending) node ids owned by shard `s`.
    ///
    /// # Panics
    /// Panics if `s >= self.shards()`.
    pub fn owned(&self, s: usize) -> &[u32] {
        &self.owned[s]
    }

    pub(crate) fn local_of(&self) -> &[u32] {
        &self.local_of
    }
}

/// Execution statistics of one sharded run — the cost side of the
/// conservative-synchronization ledger.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RunStats {
    /// Shard count the run used.
    pub shards: usize,
    /// Worker threads the driver used (`1` means the sequential
    /// driver; results never depend on this).
    pub threads: usize,
    /// Barrier rounds executed (distinct safe-horizon ticks, counting
    /// a tick once per `service_time == 0` cascade step).
    pub rounds: u64,
    /// Total events processed across shards (arrivals + retries +
    /// service completions + merged forwards).
    pub events: u64,
    /// Forwards whose sender and receiver live on different shards.
    pub boundary_messages: u64,
    /// Shard-rounds in which a shard had nothing scheduled at the safe
    /// horizon — the overhead of advancing every shard in lockstep
    /// (the zero-lookahead analogue of null-message overhead).
    pub idle_shard_rounds: u64,
    /// Events processed per shard: `max/mean` is the load-imbalance
    /// factor of the spatial partition.
    pub events_per_shard: Vec<u64>,
}

impl RunStats {
    /// Load imbalance of the spatial partition: the busiest shard's
    /// event count over the mean (1.0 = perfectly balanced; 0 when no
    /// events were processed).
    pub fn imbalance(&self) -> f64 {
        let max = self.events_per_shard.iter().copied().max().unwrap_or(0);
        if self.events == 0 {
            0.0
        } else {
            max as f64 * self.events_per_shard.len() as f64 / self.events as f64
        }
    }
}

/// The sharded traffic engine: [`crate::run`] with an explicit shard
/// count and (optionally) an explicit worker-thread count.
///
/// Results are bit-identical at every `(shards, threads)` combination;
/// the knobs only trade wall-clock time for synchronization overhead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedEngine {
    shards: usize,
    threads: Option<usize>,
}

impl ShardedEngine {
    /// An engine with `shards` spatial shards (clamped to at least 1).
    /// The worker-thread count defaults to `RAYON_NUM_THREADS` (the
    /// workspace-wide parallelism escape hatch) or, unset, the
    /// machine's available parallelism — capped at the shard count.
    pub fn new(shards: usize) -> ShardedEngine {
        ShardedEngine {
            shards: shards.max(1),
            threads: None,
        }
    }

    /// Pins the worker-thread count (clamped to at least 1; capped at
    /// the shard count at run time). `1` forces the sequential driver.
    pub fn with_threads(mut self, threads: usize) -> ShardedEngine {
        self.threads = Some(threads.max(1));
        self
    }

    /// Serves `arrivals` exactly as [`crate::run`] does and returns the
    /// identical [`TrafficOutcome`]. See [`crate::run`] for the
    /// contract and panics.
    pub fn run(
        &self,
        forwarding: &Forwarding<'_>,
        udg: &Graph,
        arrivals: &[Arrival],
        faults: &FaultPlan,
        cfg: &TrafficConfig,
    ) -> TrafficOutcome {
        self.run_with_stats(forwarding, udg, arrivals, faults, cfg)
            .0
    }

    /// [`ShardedEngine::run`], also reporting the execution statistics
    /// the scale benchmark records.
    ///
    /// # Panics
    /// Panics if an arrival endpoint is out of bounds or
    /// `cfg.ticks_per_round == 0`.
    pub fn run_with_stats(
        &self,
        forwarding: &Forwarding<'_>,
        udg: &Graph,
        arrivals: &[Arrival],
        faults: &FaultPlan,
        cfg: &TrafficConfig,
    ) -> (TrafficOutcome, RunStats) {
        assert!(cfg.ticks_per_round > 0, "ticks_per_round must be positive");
        let n = udg.node_count();
        for a in arrivals {
            assert!(a.src < n && a.dst < n, "arrival endpoints out of bounds");
        }
        let map = ShardMap::spatial(udg.points(), self.shards);
        let s = map.shards();
        let shared = Shared {
            fw: forwarding,
            udg,
            faults,
            cfg,
            arrivals,
            shard_of: map.shard_of(),
            local_of: map.local_of(),
            churn: None,
        };
        let mut per_shard_arrivals: Vec<Vec<u32>> = vec![Vec::new(); s];
        for (i, a) in arrivals.iter().enumerate() {
            per_shard_arrivals[map.shard_of()[a.src] as usize].push(i as u32);
        }
        let mut cores: Vec<ShardCore<'_>> = per_shard_arrivals
            .into_iter()
            .enumerate()
            .map(|(i, mine)| ShardCore::new(&shared, i as u32, mine, map.owned(i)))
            .collect();
        let threads = self.threads.unwrap_or_else(default_threads).min(s).max(1);
        if threads <= 1 {
            drive_sequential(&shared, &mut cores, u64::MAX);
        } else {
            cores = drive_threaded(&shared, cores, threads, u64::MAX);
        }
        let stats = RunStats {
            shards: s,
            threads,
            rounds: cores.first().map(|c| c.rounds).unwrap_or(0),
            events: cores.iter().map(|c| c.events).sum(),
            boundary_messages: cores.iter().map(|c| c.boundary_in).sum(),
            idle_shard_rounds: cores.iter().map(|c| c.idle_rounds).sum(),
            events_per_shard: cores.iter().map(|c| c.events).collect(),
        };
        (aggregate(udg, cores), stats)
    }
}

/// Worker-thread default: the `RAYON_NUM_THREADS` escape hatch the
/// workspace already honors, else the machine's parallelism. Thread
/// count never affects results, so reading the environment here is not
/// a determinism hazard.
pub(crate) fn default_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

/// One worker drives every shard: vote, execute the local phases,
/// exchange, merge — the same protocol as the threaded driver minus
/// the synchronization.
///
/// Runs until every shard is drained or the global safe horizon
/// reaches `until` (exclusive): ticks `>= until` are left unexecuted
/// with all engine state (queues, stores, pending retries and
/// services) intact, which is how the churn driver interleaves
/// topology changes between epochs. `u64::MAX` runs to quiescence.
pub(crate) fn drive_sequential(ctx: &Shared<'_, '_>, cores: &mut [ShardCore<'_>], until: u64) {
    let s = cores.len();
    // outboxes[src][dst] persists across rounds; `append` drains it.
    let mut outboxes: Vec<Vec<Vec<BoundaryMsg>>> = (0..s)
        .map(|_| (0..s).map(|_| Vec::new()).collect())
        .collect();
    loop {
        let t = cores
            .iter()
            .map(|c| c.next_time(ctx))
            .min()
            .unwrap_or(u64::MAX);
        if t >= until {
            return;
        }
        for (core, out) in cores.iter_mut().zip(outboxes.iter_mut()) {
            core.phase_local(ctx, t, out);
        }
        for (dst, core) in cores.iter_mut().enumerate() {
            let mut inbox = Vec::new();
            for out in outboxes.iter_mut() {
                inbox.append(&mut out[dst]);
            }
            core.phase_merge(ctx, t, inbox);
        }
    }
}

/// `threads` workers drive contiguous chunks of the shards through
/// barrier rounds.
///
/// Each round takes exactly two barriers: one after votes are
/// published (all workers then compute the same global minimum), one
/// after every outbox has been deposited into the mailboxes (merging
/// may then read them). A worker's first action of round `k+1` —
/// storing votes — is ordered after every other worker's reads of
/// round `k` by the second barrier, so two barriers suffice.
pub(crate) fn drive_threaded<'a>(
    ctx: &Shared<'_, '_>,
    cores: Vec<ShardCore<'a>>,
    threads: usize,
    until: u64,
) -> Vec<ShardCore<'a>> {
    let s = cores.len();
    let barrier = Barrier::new(threads);
    let votes: Vec<AtomicU64> = (0..s).map(|_| AtomicU64::new(u64::MAX)).collect();
    // mailboxes[dst][src]: each slot has exactly one writer (the worker
    // owning shard `src`) and one reader (the worker owning `dst`) per
    // round, on opposite sides of a barrier — the mutex only satisfies
    // the type system, it is never contended.
    let mailboxes: Vec<Vec<Mutex<Vec<BoundaryMsg>>>> = (0..s)
        .map(|_| (0..s).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    // Contiguous chunks, same split rule as the rayon stub.
    let mut chunks: Vec<Vec<ShardCore<'a>>> = Vec::with_capacity(threads);
    let mut rest = cores;
    for w in (0..threads).rev() {
        chunks.push(rest.split_off(w * s / threads));
    }
    chunks.reverse();
    let (barrier, votes, mailboxes) = (&barrier, &votes, &mailboxes);
    let finished: Vec<Vec<ShardCore<'a>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|mut mine| {
                scope.spawn(move || loop {
                    for core in &mine {
                        votes[core.id as usize].store(core.next_time(ctx), Ordering::SeqCst);
                    }
                    barrier.wait();
                    let t = votes
                        .iter()
                        .map(|v| v.load(Ordering::SeqCst))
                        .min()
                        .unwrap_or(u64::MAX);
                    if t >= until {
                        // Every worker computed the same minimum, so all
                        // exit on the same round and the barrier stays
                        // balanced.
                        return mine;
                    }
                    for core in mine.iter_mut() {
                        let mut outbox: Vec<Vec<BoundaryMsg>> =
                            (0..s).map(|_| Vec::new()).collect();
                        core.phase_local(ctx, t, &mut outbox);
                        for (dst, msgs) in outbox.into_iter().enumerate() {
                            if !msgs.is_empty() {
                                *mailboxes[dst][core.id as usize]
                                    .lock()
                                    .expect("mailbox writer never panics holding the lock") = msgs;
                            }
                        }
                    }
                    barrier.wait();
                    for core in mine.iter_mut() {
                        let mut inbox = Vec::new();
                        for slot in mailboxes[core.id as usize].iter().take(s) {
                            inbox.append(
                                &mut slot
                                    .lock()
                                    .expect("mailbox reader never panics holding the lock"),
                            );
                        }
                        core.phase_merge(ctx, t, inbox);
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    finished.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdmissionPolicy, Workload};
    use geospan_graph::gen::{uniform_points, UnitDiskBuilder};
    use geospan_graph::Point;
    use geospan_sim::ReliabilityConfig;

    fn net(n: usize, side: f64, radius: f64, seed: u64) -> Graph {
        let pts = uniform_points(n, side, seed);
        UnitDiskBuilder::new(radius).build(&pts)
    }

    #[test]
    fn spatial_map_is_balanced_and_consistent() {
        let pts = uniform_points(97, 200.0, 4);
        for shards in [1, 2, 4, 8] {
            let map = ShardMap::spatial(&pts, shards);
            assert_eq!(map.shards(), shards);
            let total: usize = (0..shards).map(|s| map.owned(s).len()).sum();
            assert_eq!(total, 97);
            for s in 0..shards {
                let nodes = map.owned(s);
                // Balanced to within one node.
                assert!(
                    nodes.len().abs_diff(97 / shards) <= 1,
                    "shard {s} owns {}",
                    nodes.len()
                );
                assert!(nodes.windows(2).all(|w| w[0] < w[1]), "owned ids ascending");
                for (i, &v) in nodes.iter().enumerate() {
                    assert_eq!(map.shard_of()[v as usize], s as u32);
                    assert_eq!(map.local_of()[v as usize], i as u32);
                }
            }
        }
    }

    #[test]
    fn more_shards_than_nodes_leaves_empty_shards() {
        let pts: Vec<Point> = (0..3).map(|i| Point::new(i as f64, 0.0)).collect();
        let map = ShardMap::spatial(&pts, 8);
        let total: usize = (0..8).map(|s| map.owned(s).len()).sum();
        assert_eq!(total, 3);
        assert!((0..8).any(|s| map.owned(s).is_empty()));
    }

    #[test]
    fn degenerate_geometry_still_partitions() {
        // All nodes at one point: the bounding box has zero extent.
        let pts: Vec<Point> = (0..10).map(|_| Point::new(5.0, 5.0)).collect();
        let map = ShardMap::spatial(&pts, 4);
        let total: usize = (0..4).map(|s| map.owned(s).len()).sum();
        assert_eq!(total, 10);
    }

    /// The crown invariant on a generic lossy, contended, retransmitting,
    /// overload-controlled, admission-paced network: every shard count
    /// and thread count produces the identical outcome struct.
    #[test]
    fn every_shard_and_thread_count_is_bit_identical() {
        let g = net(60, 150.0, 40.0, 7);
        let arrivals = Workload::hotspot(3, 0.7, 2.0, 400).generate(60, 9);
        let plan = FaultPlan::new(21).with_loss(0.12).with_duplication(0.05);
        let cfg = TrafficConfig {
            queue_capacity: 8,
            reliability: Some(ReliabilityConfig::default()),
            overload: Some(geospan_sim::OverloadConfig::for_capacity(8)),
            admission: AdmissionPolicy::TokenBucket {
                ticks_per_token: 4,
                burst: 3,
            },
            record_paths: true,
            ..TrafficConfig::default()
        };
        let fw = Forwarding::Greedy(&g);
        let reference = ShardedEngine::new(1)
            .with_threads(1)
            .run(&fw, &g, &arrivals, &plan, &cfg);
        assert!(reference.report.delivered > 0);
        assert!(reference.report.drops.total() > 0, "losses should occur");
        for shards in [2, 4, 8] {
            for threads in [1, 2, 4] {
                let out = ShardedEngine::new(shards)
                    .with_threads(threads)
                    .run(&fw, &g, &arrivals, &plan, &cfg);
                assert_eq!(out, reference, "shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    fn zero_service_time_cascades_stay_lockstep() {
        // service_time == 0 lets a packet cross several shards within
        // one tick: the safe horizon must re-open the same tick until
        // the cascade drains, on every shard count.
        let g = net(40, 120.0, 40.0, 3);
        let arrivals = Workload::uniform(1.5, 200).generate(40, 5);
        let cfg = TrafficConfig {
            service_time: 0,
            queue_capacity: 16,
            ..TrafficConfig::default()
        };
        let fw = Forwarding::Greedy(&g);
        let plan = FaultPlan::new(2).with_loss(0.1);
        let reference = ShardedEngine::new(1)
            .with_threads(1)
            .run(&fw, &g, &arrivals, &plan, &cfg);
        assert!(reference.report.delivered > 0);
        // Multi-hop deliveries in zero ticks prove intra-tick cascades.
        assert!(reference
            .packets
            .iter()
            .any(|p| p.hops > 1 && p.latency() == 0));
        for shards in [2, 4, 8] {
            let out = ShardedEngine::new(shards)
                .with_threads(2)
                .run(&fw, &g, &arrivals, &plan, &cfg);
            assert_eq!(out, reference, "shards={shards}");
        }
    }

    #[test]
    fn empty_shards_idle_through_the_run() {
        // 8 shards over a 4-node chain: at least 4 shards own nothing
        // and must neither stall the barrier protocol nor perturb the
        // result.
        let pts: Vec<Point> = (0..4).map(|i| Point::new(i as f64, 0.0)).collect();
        let g = Graph::with_edges(pts, [(0, 1), (1, 2), (2, 3)]);
        let arrivals = vec![
            Arrival {
                time: 0,
                src: 0,
                dst: 3,
            },
            Arrival {
                time: 2,
                src: 3,
                dst: 0,
            },
        ];
        let fw = Forwarding::Greedy(&g);
        let cfg = TrafficConfig::default();
        let reference = ShardedEngine::new(1).run(&fw, &g, &arrivals, &FaultPlan::none(), &cfg);
        assert_eq!(reference.report.delivered, 2);
        let (out, stats) = ShardedEngine::new(8).with_threads(2).run_with_stats(
            &fw,
            &g,
            &arrivals,
            &FaultPlan::none(),
            &cfg,
        );
        assert_eq!(out, reference);
        assert_eq!(stats.shards, 8);
        assert!(stats.idle_shard_rounds > 0, "surplus shards idle");
    }

    #[test]
    fn all_traffic_across_one_boundary() {
        // Two clusters joined by a single bridge edge; every packet
        // crosses it, so the cut carries 100% of the traffic.
        let mut pts: Vec<Point> = (0..8).map(|i| Point::new(i as f64 * 2.0, 0.0)).collect();
        pts.extend((0..8).map(|i| Point::new(100.0 + i as f64 * 2.0, 0.0)));
        let mut edges: Vec<(usize, usize)> = (1..8).map(|i| (i - 1, i)).collect();
        edges.extend((9..16).map(|i| (i - 1, i)));
        edges.push((7, 8)); // the bridge
        let g = Graph::with_edges(pts, edges);
        let arrivals: Vec<Arrival> = (0..20)
            .map(|i| Arrival {
                time: i as u64,
                src: (i % 8) as usize,
                dst: 8 + ((i * 3) % 8) as usize,
            })
            .collect();
        let fw = Forwarding::Greedy(&g);
        let cfg = TrafficConfig {
            record_paths: true,
            ..TrafficConfig::default()
        };
        let reference = ShardedEngine::new(1).run(&fw, &g, &arrivals, &FaultPlan::none(), &cfg);
        assert_eq!(reference.report.delivered, 20);
        let (out, stats) = ShardedEngine::new(2).with_threads(2).run_with_stats(
            &fw,
            &g,
            &arrivals,
            &FaultPlan::none(),
            &cfg,
        );
        assert_eq!(out, reference);
        // The spatial split puts the clusters on different shards, so
        // every packet produces at least one boundary crossing.
        assert!(
            stats.boundary_messages >= 20,
            "{} crossings",
            stats.boundary_messages
        );
    }

    #[test]
    fn crash_of_a_node_owning_in_flight_boundary_events() {
        // A packet is forwarded across the boundary into a node that
        // crashes on exactly the arrival tick, and another sits queued
        // at a node that crashes with the packet in its queue. Both
        // fates must be identical at every shard count.
        let mut pts: Vec<Point> = (0..4).map(|i| Point::new(i as f64 * 2.0, 0.0)).collect();
        pts.extend((0..4).map(|i| Point::new(100.0 + i as f64 * 2.0, 0.0)));
        let mut edges: Vec<(usize, usize)> = (1..4).map(|i| (i - 1, i)).collect();
        edges.extend((5..8).map(|i| (i - 1, i)));
        edges.push((3, 4));
        let g = Graph::with_edges(pts, edges);
        // Receiver-side node 4 crashes at round 4: packets launched at
        // t=0 reach it around then; later packets die in its queue or
        // on arrival.
        let plan = FaultPlan::new(0).with_crash(4, 4);
        let arrivals: Vec<Arrival> = (0..12)
            .map(|i| Arrival {
                time: i as u64 / 2,
                src: (i % 4) as usize,
                dst: 4 + (i % 4) as usize,
            })
            .collect();
        let fw = Forwarding::Greedy(&g);
        let cfg = TrafficConfig {
            service_time: 2,
            ..TrafficConfig::default()
        };
        let reference = ShardedEngine::new(1).run(&fw, &g, &arrivals, &plan, &cfg);
        assert!(reference.report.drops.node_crash > 0, "the crash must bite");
        for shards in [2, 4] {
            let out = ShardedEngine::new(shards)
                .with_threads(2)
                .run(&fw, &g, &arrivals, &plan, &cfg);
            assert_eq!(out, reference, "shards={shards}");
        }
    }

    #[test]
    fn stats_account_for_the_protocol() {
        let g = net(50, 140.0, 40.0, 1);
        let arrivals = Workload::uniform(1.0, 300).generate(50, 2);
        let fw = Forwarding::Greedy(&g);
        let cfg = TrafficConfig::default();
        let (one, s1) = ShardedEngine::new(1).with_threads(1).run_with_stats(
            &fw,
            &g,
            &arrivals,
            &FaultPlan::none(),
            &cfg,
        );
        let (four, s4) = ShardedEngine::new(4).with_threads(1).run_with_stats(
            &fw,
            &g,
            &arrivals,
            &FaultPlan::none(),
            &cfg,
        );
        assert_eq!(one, four);
        assert_eq!(s1.shards, 1);
        assert_eq!(s1.boundary_messages, 0, "one shard has no boundaries");
        assert_eq!(s1.events, s4.events, "same events, different owners");
        assert_eq!(s1.rounds, s4.rounds, "lockstep visits the same ticks");
        assert!(s4.boundary_messages > 0);
        assert_eq!(s4.events_per_shard.len(), 4);
        assert_eq!(s4.events_per_shard.iter().sum::<u64>(), s4.events);
        assert!(s4.imbalance() >= 1.0);
        assert!(s1.imbalance() >= 1.0 - 1e-12);
    }
}
