//! Seeded workload generators: who sends to whom, and when.
//!
//! A workload is expanded up front into a sorted arrival schedule — a
//! plain `Vec<Arrival>` — so the same seed always produces the same
//! packets regardless of how the engine is driven. All randomness comes
//! from one `StdRng` consumed in a fixed order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One packet entering the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Tick at which the packet is offered to its source node.
    pub time: u64,
    /// Source node.
    pub src: usize,
    /// Destination node (always distinct from `src`).
    pub dst: usize,
}

/// The shape of a workload's demand matrix and arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadKind {
    /// Independent uniform random source/destination pairs.
    Uniform,
    /// A fraction `bias` of all packets targets one `sink` node (data
    /// collection / gateway traffic); the rest are uniform.
    Hotspot {
        /// The sink node every biased packet targets.
        sink: usize,
        /// Probability a packet targets the sink.
        bias: f64,
    },
    /// Arrivals come in bursts: each tick starts a burst of `burst`
    /// back-to-back packets with probability `rate / burst`, so the
    /// long-run offered load still matches `rate` while instantaneous
    /// demand spikes stress the transmit queues.
    Bursty {
        /// Packets per burst.
        burst: usize,
    },
}

/// A sustained packet workload: an arrival process at `rate` expected
/// packets per tick over `duration` ticks, with a [`WorkloadKind`]
/// demand shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Demand shape.
    pub kind: WorkloadKind,
    /// Expected packets per tick (the offered load).
    pub rate: f64,
    /// Number of ticks over which packets arrive.
    pub duration: u64,
}

impl WorkloadKind {
    /// A short label for reports and CSV rows.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::Hotspot { .. } => "hotspot",
            WorkloadKind::Bursty { .. } => "bursty",
        }
    }

    /// The kind's shape parameter for CSV rows: the sink bias for
    /// hotspot, the burst size for bursty, 0 for uniform.
    pub fn param(&self) -> f64 {
        match *self {
            WorkloadKind::Uniform => 0.0,
            WorkloadKind::Hotspot { bias, .. } => bias,
            WorkloadKind::Bursty { burst } => burst as f64,
        }
    }
}

impl Workload {
    /// Uniform random pairs at `rate` packets per tick.
    pub fn uniform(rate: f64, duration: u64) -> Self {
        Workload {
            kind: WorkloadKind::Uniform,
            rate,
            duration,
        }
    }

    /// Hotspot traffic: probability `bias` of targeting `sink`.
    pub fn hotspot(sink: usize, bias: f64, rate: f64, duration: u64) -> Self {
        Workload {
            kind: WorkloadKind::Hotspot { sink, bias },
            rate,
            duration,
        }
    }

    /// Bursty arrivals: bursts of `burst` packets, long-run load `rate`.
    pub fn bursty(burst: usize, rate: f64, duration: u64) -> Self {
        Workload {
            kind: WorkloadKind::Bursty {
                burst: burst.max(1),
            },
            rate,
            duration,
        }
    }

    /// Expands the workload into a time-sorted arrival schedule over `n`
    /// nodes, deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `n < 2`, the rate is not a finite non-negative number,
    /// or a hotspot sink is out of bounds.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Arrival> {
        assert!(n >= 2, "a workload needs at least two nodes");
        assert!(
            self.rate.is_finite() && self.rate >= 0.0,
            "rate must be finite and non-negative"
        );
        if let WorkloadKind::Hotspot { sink, bias } = self.kind {
            assert!(sink < n, "hotspot sink {sink} out of bounds for {n} nodes");
            assert!((0.0..=1.0).contains(&bias), "bias must be in [0, 1]");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for time in 0..self.duration {
            let count = match self.kind {
                WorkloadKind::Bursty { burst } => {
                    let p = (self.rate / burst as f64).min(1.0);
                    if rng.random_range(0.0..1.0) < p {
                        burst
                    } else {
                        0
                    }
                }
                _ => {
                    let whole = self.rate.floor();
                    let extra = rng.random_range(0.0..1.0) < self.rate - whole;
                    whole as usize + usize::from(extra)
                }
            };
            for _ in 0..count {
                let dst = match self.kind {
                    WorkloadKind::Hotspot { sink, bias } if rng.random_range(0.0..1.0) < bias => {
                        sink
                    }
                    _ => rng.random_range(0..n),
                };
                let mut src = rng.random_range(0..n);
                while src == dst {
                    src = rng.random_range(0..n);
                }
                out.push(Arrival { time, src, dst });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let w = Workload::uniform(0.7, 500);
        assert_eq!(w.generate(20, 9), w.generate(20, 9));
        assert_ne!(w.generate(20, 9), w.generate(20, 10));
    }

    #[test]
    fn rate_is_roughly_respected() {
        for w in [
            Workload::uniform(0.5, 4000),
            Workload::bursty(8, 0.5, 4000),
            Workload::hotspot(0, 0.8, 0.5, 4000),
        ] {
            let arrivals = w.generate(30, 42);
            let expected = 0.5 * 4000.0;
            assert!(
                (arrivals.len() as f64) > 0.7 * expected
                    && (arrivals.len() as f64) < 1.3 * expected,
                "{:?}: {} arrivals",
                w.kind,
                arrivals.len()
            );
        }
    }

    #[test]
    fn arrivals_are_sorted_and_loopless() {
        let arrivals = Workload::bursty(5, 1.3, 300).generate(10, 1);
        for pair in arrivals.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        for a in &arrivals {
            assert_ne!(a.src, a.dst);
            assert!(a.src < 10 && a.dst < 10);
        }
    }

    #[test]
    fn hotspot_bias_concentrates_on_sink() {
        let arrivals = Workload::hotspot(3, 0.9, 1.0, 2000).generate(25, 5);
        let to_sink = arrivals.iter().filter(|a| a.dst == 3).count();
        assert!(
            to_sink * 10 > arrivals.len() * 8,
            "{to_sink}/{} to sink",
            arrivals.len()
        );
    }

    #[test]
    fn rates_above_one_offer_multiple_packets_per_tick() {
        let arrivals = Workload::uniform(2.5, 1000).generate(12, 2);
        assert!(arrivals.len() > 2200 && arrivals.len() < 2800);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_networks_rejected() {
        let _ = Workload::uniform(1.0, 10).generate(1, 0);
    }

    #[test]
    fn kind_labels_and_params() {
        assert_eq!(Workload::uniform(0.1, 10).kind.label(), "uniform");
        assert_eq!(Workload::uniform(0.1, 10).kind.param(), 0.0);
        let h = Workload::hotspot(2, 0.75, 0.1, 10);
        assert_eq!(h.kind.label(), "hotspot");
        assert_eq!(h.kind.param(), 0.75);
        let b = Workload::bursty(16, 0.1, 10);
        assert_eq!(b.kind.label(), "bursty");
        assert_eq!(b.kind.param(), 16.0);
    }
}
