//! Geographic routing over the constructed topologies.
//!
//! The backbone exists to serve localized routing: every algorithm here
//! makes forwarding decisions using only the current node's neighbors and
//! the destination's position, exactly the regime of GPSR (Karp & Kung)
//! and the routing schemes the paper cites.
//!
//! * [`greedy_route`] — pure greedy geographic forwarding: always move to
//!   the neighbor closest to the destination; fails at local minima
//!   ("voids").
//! * [`gpsr_route`] — greedy with perimeter (right-hand rule) recovery on
//!   a **planar** graph: the GPSR/GFG scheme. On a connected plane
//!   embedding the perimeter mode escapes every void.
//! * [`backbone_route`] — the paper's dominating-set-based routing: hop
//!   to a dominator, traverse the planar backbone `LDel(ICDS)` with GPSR,
//!   hop to the destination.
//!
//! Every algorithm is built from a **single-hop decision**: given the
//! packet's per-session state, the node currently holding it, and the
//! destination, [`greedy_forward`], [`gpsr_forward`], and
//! [`backbone_forward`] return one [`Decision`]. The whole-route
//! functions above are thin loops over these; the discrete-event traffic
//! engine (`geospan-traffic`) drives the very same decisions one radio
//! transmission at a time, so congestion and faults interact with exactly
//! the forwarding logic measured here.

use geospan_geometry::{pseudo_angle, Point};
use geospan_graph::Graph;

use crate::Backbone;

/// Why a route ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The destination was reached.
    Delivered,
    /// No forwarding rule applied (greedy local minimum with no recovery,
    /// or perimeter traversal exhausted the face without progress:
    /// destination unreachable).
    Stuck,
    /// The hop budget ran out.
    HopLimit,
}

/// A route taken through a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// The nodes visited, starting at the source.
    pub path: Vec<usize>,
    /// Why the route ended.
    pub outcome: RouteOutcome,
}

impl Route {
    /// True when the destination was reached.
    pub fn delivered(&self) -> bool {
        self.outcome == RouteOutcome::Delivered
    }

    /// Number of hops taken.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// Euclidean length of the route.
    ///
    /// # Panics
    /// Panics if the path refers to nodes outside `g`.
    pub fn length(&self, g: &Graph) -> f64 {
        self.path
            .windows(2)
            .map(|w| g.edge_length(w[0], w[1]))
            .sum()
    }
}

/// A single forwarding decision: what the node currently holding a packet
/// should do with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Hand the packet to this neighbor.
    Forward(usize),
    /// The packet is at its destination.
    Arrived,
    /// No forwarding rule applies from here: the destination is
    /// unreachable for this algorithm (greedy local minimum, or an
    /// exhausted perimeter walk).
    Stuck,
}

/// One greedy forwarding decision at `u` toward `dst`.
///
/// Stateless: greedy forwarding needs no per-packet session.
///
/// # Panics
/// Panics if `u` or `dst` are out of bounds.
pub fn greedy_forward(g: &Graph, u: usize, dst: usize) -> Decision {
    if u == dst {
        return Decision::Arrived;
    }
    match greedy_next(g, u, g.position(dst)) {
        Some(v) => Decision::Forward(v),
        None => Decision::Stuck,
    }
}

/// Greedy geographic forwarding: repeatedly move to the neighbor strictly
/// closest to the destination.
///
/// # Panics
/// Panics if `src` or `dst` are out of bounds.
pub fn greedy_route(g: &Graph, src: usize, dst: usize, max_hops: usize) -> Route {
    let mut path = vec![src];
    let mut u = src;
    loop {
        match greedy_forward(g, u, dst) {
            Decision::Arrived => {
                return Route {
                    path,
                    outcome: RouteOutcome::Delivered,
                }
            }
            _ if path.len() > max_hops => {
                return Route {
                    path,
                    outcome: RouteOutcome::HopLimit,
                }
            }
            Decision::Forward(v) => {
                path.push(v);
                u = v;
            }
            Decision::Stuck => {
                return Route {
                    path,
                    outcome: RouteOutcome::Stuck,
                }
            }
        }
    }
}

/// The neighbor of `u` strictly closer to `dpos` than `u`, closest first
/// (ties broken by index); `None` at a local minimum.
fn greedy_next(g: &Graph, u: usize, dpos: Point) -> Option<usize> {
    let du = g.position(u).distance_sq(dpos);
    g.neighbors(u)
        .iter()
        .copied()
        .map(|v| (g.position(v).distance_sq(dpos), v))
        .filter(|&(d, _)| d < du)
        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
        .map(|(_, v)| v)
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Greedy,
    Perimeter,
}

/// Per-packet state of a GPSR forwarding session.
///
/// One value travels with each packet; [`gpsr_forward`] reads and updates
/// it at every hop. A fresh state starts in greedy mode.
#[derive(Debug, Clone)]
pub struct GpsrState {
    mode: Mode,
    /// Distance to the destination when perimeter mode was entered.
    entry_dist: f64,
    /// Current face entry point of the perimeter walk.
    face_point: Point,
    /// Node the packet arrived from (right-hand-rule reference).
    prev: usize,
    /// Directed edges walked on the current face.
    walked: std::collections::HashSet<(usize, usize)>,
}

impl GpsrState {
    /// A fresh session in greedy mode.
    pub fn new() -> Self {
        GpsrState {
            mode: Mode::Greedy,
            entry_dist: f64::INFINITY,
            face_point: Point::new(0.0, 0.0),
            prev: usize::MAX,
            walked: std::collections::HashSet::new(),
        }
    }

    /// True while the session is in greedy mode (no void encountered
    /// since the last recovery).
    pub fn is_greedy(&self) -> bool {
        self.mode == Mode::Greedy
    }
}

impl Default for GpsrState {
    fn default() -> Self {
        GpsrState::new()
    }
}

/// One GPSR forwarding decision at `u` toward `dst`: greedy while
/// progress is possible, right-hand-rule perimeter recovery otherwise.
///
/// `g` must be a **plane** embedding for the perimeter mode to be
/// meaningful. The session state must accompany the packet: pass the
/// same `state` for every hop of one packet, starting from
/// [`GpsrState::new`].
///
/// # Panics
/// Panics if `u` or `dst` are out of bounds.
pub fn gpsr_forward(g: &Graph, state: &mut GpsrState, u: usize, dst: usize) -> Decision {
    if u == dst {
        return Decision::Arrived;
    }
    let dpos = g.position(dst);
    loop {
        match state.mode {
            Mode::Greedy => {
                return match greedy_next(g, u, dpos) {
                    Some(v) => Decision::Forward(v),
                    None => {
                        if g.degree(u) == 0 {
                            return Decision::Stuck;
                        }
                        state.mode = Mode::Perimeter;
                        state.entry_dist = g.position(u).distance(dpos);
                        state.face_point = g.position(u);
                        state.walked.clear();
                        let v = first_edge_ccw(g, u, dpos);
                        state.walked.insert((u, v));
                        state.prev = u;
                        Decision::Forward(v)
                    }
                }
            }
            Mode::Perimeter => {
                if g.position(u).distance(dpos) < state.entry_dist {
                    // Closer than the void that forced recovery: resume
                    // greedy (a mode switch, not a hop).
                    state.mode = Mode::Greedy;
                    continue;
                }
                let mut v = next_ccw(g, u, state.prev);
                if v == dst {
                    return Decision::Forward(v);
                }
                // Face changes: when the chosen edge crosses the segment
                // from the face entry point to the destination at a
                // closer point **and the segment exits the current face
                // there** (the destination lies strictly left of the
                // directed edge, while the walked face lies on its
                // right), do not traverse it — bounce onto the face on
                // the far side. Crossings with the destination on the
                // right are the segment re-entering the current face and
                // must be ignored. Several exit edges can share `u`,
                // hence the loop.
                for _ in 0..=g.degree(u) {
                    if !face_exit_crossing(g, u, v, state.face_point, dpos) {
                        break;
                    }
                    let p =
                        segment_intersection(g.position(u), g.position(v), state.face_point, dpos)
                            .expect("exit test implies intersection");
                    state.face_point = p;
                    v = next_ccw(g, u, v);
                    // New face: edges may legitimately repeat.
                    state.walked.clear();
                }
                if v == dst {
                    return Decision::Forward(v);
                }
                if !state.walked.insert((u, v)) {
                    // Same directed edge twice in one perimeter session:
                    // the destination is not reachable from this face.
                    return Decision::Stuck;
                }
                state.prev = u;
                return Decision::Forward(v);
            }
        }
    }
}

/// GPSR-style routing: greedy forwarding with right-hand-rule perimeter
/// recovery.
///
/// `g` must be a **plane** embedding (no two edges properly cross) for
/// the perimeter mode to be meaningful; on the planar backbones produced
/// by this workspace, delivery succeeds whenever source and destination
/// are connected.
///
/// # Panics
/// Panics if `src` or `dst` are out of bounds.
pub fn gpsr_route(g: &Graph, src: usize, dst: usize, max_hops: usize) -> Route {
    let mut state = GpsrState::new();
    let mut path = vec![src];
    let mut u = src;
    loop {
        match gpsr_forward(g, &mut state, u, dst) {
            Decision::Arrived => {
                return Route {
                    path,
                    outcome: RouteOutcome::Delivered,
                }
            }
            _ if path.len() > max_hops => {
                return Route {
                    path,
                    outcome: RouteOutcome::HopLimit,
                }
            }
            Decision::Forward(v) => {
                path.push(v);
                u = v;
            }
            Decision::Stuck => {
                return Route {
                    path,
                    outcome: RouteOutcome::Stuck,
                }
            }
        }
    }
}

/// Pure FACE (perimeter-only) routing: the right-hand-rule walk with
/// face changes, never switching to greedy.
///
/// This is the recovery mode of GPSR run standalone — the original FACE
/// routing of Bose et al. (the paper's `[2]`). On a connected plane
/// embedding it reaches every destination, at the cost of longer routes
/// than the greedy hybrid; it serves as the correctness baseline for
/// [`gpsr_route`].
///
/// # Panics
/// Panics if `src` or `dst` are out of bounds.
pub fn face_route(g: &Graph, src: usize, dst: usize, max_hops: usize) -> Route {
    let dpos = g.position(dst);
    let mut path = vec![src];
    if src == dst {
        return Route {
            path,
            outcome: RouteOutcome::Delivered,
        };
    }
    if g.degree(src) == 0 {
        return Route {
            path,
            outcome: RouteOutcome::Stuck,
        };
    }
    let mut face_point = g.position(src);
    let mut u = src;
    let mut v = first_edge_ccw(g, src, dpos);
    // Directed edges walked on the *current* face; an edge may reappear
    // on a later face, so the set resets at every face change.
    let mut walked: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    walked.insert((u, v));
    loop {
        path.push(v);
        if v == dst {
            return Route {
                path,
                outcome: RouteOutcome::Delivered,
            };
        }
        if path.len() > max_hops {
            return Route {
                path,
                outcome: RouteOutcome::HopLimit,
            };
        }
        let prev = std::mem::replace(&mut u, v);
        v = next_ccw(g, u, prev);
        if v != dst {
            // Bounce across exit crossings onto the face the segment
            // continues into (see gpsr_route for the rationale).
            for _ in 0..=g.degree(u) {
                if !face_exit_crossing(g, u, v, face_point, dpos) {
                    break;
                }
                let p = segment_intersection(g.position(u), g.position(v), face_point, dpos)
                    .expect("exit test implies intersection");
                face_point = p;
                v = next_ccw(g, u, v);
                walked.clear();
            }
        }
        if !walked.insert((u, v)) {
            // Completed a face loop without a closer crossing: the
            // destination is not reachable in this embedding.
            return Route {
                path,
                outcome: RouteOutcome::Stuck,
            };
        }
    }
}

/// Per-packet state of a dominating-set-based routing session: which leg
/// of the ingress → spanner → egress journey the packet is on, plus the
/// GPSR state of the spanner leg.
#[derive(Debug, Clone)]
pub struct BackboneSession {
    started: bool,
    gpsr: GpsrState,
}

impl BackboneSession {
    /// A fresh session (packet still at its source).
    pub fn new() -> Self {
        BackboneSession {
            started: false,
            gpsr: GpsrState::new(),
        }
    }
}

impl Default for BackboneSession {
    fn default() -> Self {
        BackboneSession::new()
    }
}

/// One decision of the paper's dominating-set-based routing: direct
/// delivery when source and destination are UDG neighbors; otherwise
/// enter the backbone through a dominator, traverse the planar backbone
/// `LDel(ICDS)` with GPSR toward the destination's dominator, and exit
/// to the destination.
///
/// The session must accompany the packet. The hop sequence reproduces
/// [`backbone_route`] node-for-node.
///
/// # Panics
/// Panics if `u` or `dst` are out of bounds, or if `udg` does not match
/// the backbone's vertex set.
pub fn backbone_forward(
    backbone: &Backbone,
    udg: &Graph,
    session: &mut BackboneSession,
    u: usize,
    dst: usize,
) -> Decision {
    if u == dst {
        return Decision::Arrived;
    }
    if !session.started {
        session.started = true;
        // At the source: deliver directly to a 1-hop neighbor, or step
        // onto the backbone through the source's dominator.
        if udg.has_edge(u, dst) {
            return Decision::Forward(dst);
        }
        let enter = backbone_entry(backbone, u);
        if enter != u {
            return Decision::Forward(enter);
        }
    }
    // On the backbone: GPSR over LDel(ICDS) toward the exit dominator,
    // then the final UDG hop to the destination.
    let exit = backbone_entry(backbone, dst);
    if u == exit {
        return Decision::Forward(dst);
    }
    match gpsr_forward(backbone.ldel_icds(), &mut session.gpsr, u, exit) {
        Decision::Arrived => Decision::Forward(dst),
        d => d,
    }
}

/// The paper's dominating-set-based routing: direct delivery when the
/// destination is a UDG neighbor; otherwise enter the backbone through a
/// dominator, traverse the planar backbone with GPSR, and exit through
/// the destination's dominator.
///
/// `max_hops` bounds the backbone (GPSR) leg of the route, as in the
/// original formulation; the ingress and egress hops ride on top.
///
/// # Panics
/// Panics if `src` or `dst` are out of bounds, or if `udg` does not match
/// the backbone's vertex set.
pub fn backbone_route(
    backbone: &Backbone,
    udg: &Graph,
    src: usize,
    dst: usize,
    max_hops: usize,
) -> Route {
    assert_eq!(
        udg.node_count(),
        backbone.roles().len(),
        "UDG and backbone must share the vertex set"
    );
    let mut session = BackboneSession::new();
    let mut path = vec![src];
    let mut u = src;
    // The spanner leg starts after the optional ingress hop; budget the
    // GPSR leg exactly as before (ingress + egress hops are extra).
    let enter = backbone_entry(backbone, src);
    let budget = max_hops + usize::from(enter != src) + 1;
    loop {
        match backbone_forward(backbone, udg, &mut session, u, dst) {
            Decision::Arrived => {
                return Route {
                    path,
                    outcome: RouteOutcome::Delivered,
                }
            }
            _ if path.len() > budget => {
                return Route {
                    path,
                    outcome: RouteOutcome::HopLimit,
                }
            }
            Decision::Forward(v) => {
                path.push(v);
                u = v;
            }
            Decision::Stuck => {
                return Route {
                    path,
                    outcome: RouteOutcome::Stuck,
                }
            }
        }
    }
}

/// A node's backbone entry point: itself when it is a dominator or
/// connector, otherwise its smallest adjacent dominator.
pub fn backbone_entry(backbone: &Backbone, v: usize) -> usize {
    if backbone.cds_graphs().is_backbone(v) {
        v
    } else {
        backbone.cds_graphs().dominators_of[v]
            .first()
            .copied()
            .expect("every dominatee has a dominator")
    }
}

/// Outcome of a dominating-set-based broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastReport {
    /// Number of radio transmissions performed (source + forwarding
    /// backbone nodes).
    pub transmissions: usize,
    /// Number of nodes that received the message (including the source).
    pub reached: usize,
}

/// Dominating-set-based broadcast: the source transmits once, and only
/// **backbone** nodes (dominators and connectors) retransmit.
///
/// Because the backbone is a connected dominating set, every node in the
/// source's component is reached while the number of transmissions is
/// proportional to the backbone size instead of `n` — the broadcast
/// application of CDS backbones the paper cites (Stojmenovic et al.).
///
/// # Panics
/// Panics if `src` is out of bounds or `udg` does not match the
/// backbone's vertex set.
pub fn backbone_broadcast(backbone: &Backbone, udg: &Graph, src: usize) -> BroadcastReport {
    assert_eq!(
        udg.node_count(),
        backbone.roles().len(),
        "UDG and backbone must share the vertex set"
    );
    let n = udg.node_count();
    let mut received = vec![false; n];
    let mut forwarded = vec![false; n];
    received[src] = true;
    let mut queue = std::collections::VecDeque::from([src]);
    let mut transmissions = 0;
    while let Some(t) = queue.pop_front() {
        if forwarded[t] {
            continue;
        }
        forwarded[t] = true;
        transmissions += 1;
        for &v in udg.neighbors(t) {
            if !received[v] {
                received[v] = true;
                if backbone.cds_graphs().is_backbone(v) {
                    queue.push_back(v);
                }
            } else if backbone.cds_graphs().is_backbone(v) && !forwarded[v] {
                // Already informed backbone neighbors still forward once;
                // they may be the only bridge to farther clusters.
                queue.push_back(v);
            }
        }
    }
    BroadcastReport {
        transmissions,
        reached: received.iter().filter(|&&r| r).count(),
    }
}

/// Cost of flooding from `src`: one transmission per node reached.
///
/// The baseline the sensor-network example compares against.
pub fn flood_transmissions(g: &Graph, src: usize) -> usize {
    let mut seen = vec![false; g.node_count()];
    seen[src] = true;
    let mut stack = vec![src];
    let mut count = 0;
    while let Some(u) = stack.pop() {
        count += 1;
        for &v in g.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    count
}

/// First edge counterclockwise about `u` starting from the ray toward
/// `target`.
fn first_edge_ccw(g: &Graph, u: usize, target: Point) -> usize {
    let pu = g.position(u);
    let ref_angle = pseudo_angle(target.x - pu.x, target.y - pu.y);
    best_by_ccw_angle(g, u, ref_angle)
}

/// Next edge counterclockwise about `u` from the ray toward `prev` (the
/// right-hand rule step).
fn next_ccw(g: &Graph, u: usize, prev: usize) -> usize {
    let pu = g.position(u);
    let pp = g.position(prev);
    let ref_angle = pseudo_angle(pp.x - pu.x, pp.y - pu.y);
    best_by_ccw_angle(g, u, ref_angle)
}

/// The neighbor minimizing the positive counterclockwise pseudo-angle
/// from `ref_angle` (a neighbor exactly on the ray counts as a full
/// turn, so the walk can bounce back from degree-1 nodes).
fn best_by_ccw_angle(g: &Graph, u: usize, ref_angle: f64) -> usize {
    let pu = g.position(u);
    g.neighbors(u)
        .iter()
        .copied()
        .map(|v| {
            let pv = g.position(v);
            let a = pseudo_angle(pv.x - pu.x, pv.y - pu.y);
            let mut diff = a - ref_angle;
            if diff <= 0.0 {
                diff += 4.0;
            }
            (diff, v)
        })
        .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
        .map(|(_, v)| v)
        .expect("perimeter mode requires degree >= 1")
}

/// Does walking the face edge `u -> v` constitute leaving the current
/// face through the routing segment `face_point -> dpos`?
///
/// True when the edge intersects the segment at a point strictly closer
/// to the destination than `face_point` **and** the destination lies
/// strictly to the left of `u -> v` — the walked face is on the right of
/// its directed boundary edges, so a left-side destination means the
/// segment exits the face here (a right-side one means it re-enters and
/// the crossing must be ignored).
fn face_exit_crossing(g: &Graph, u: usize, v: usize, face_point: Point, dpos: Point) -> bool {
    use geospan_geometry::{orient2d, Orientation};
    if orient2d(g.position(u), g.position(v), dpos) != Orientation::CounterClockwise {
        return false;
    }
    match segment_intersection(g.position(u), g.position(v), face_point, dpos) {
        Some(p) => p.distance(dpos) < face_point.distance(dpos),
        None => false,
    }
}

/// Intersection point of segments `ab` and `cd`, if any (computed in
/// floating point; used only for the face-change heuristic).
fn segment_intersection(a: Point, b: Point, c: Point, d: Point) -> Option<Point> {
    let r = b - a;
    let s = d - c;
    let denom = r.cross(s);
    if denom == 0.0 {
        return None;
    }
    let t = (c - a).cross(s) / denom;
    let w = (c - a).cross(r) / denom;
    if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&w) {
        Some(a + r * t)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackboneBuilder, BackboneConfig};
    use geospan_graph::gen::connected_unit_disk;
    use geospan_topology::gabriel;

    #[test]
    fn greedy_on_convex_layout_delivers() {
        let (_pts, udg, _s) = connected_unit_disk(50, 120.0, 50.0, 5);
        let mut delivered = 0;
        let mut total = 0;
        for s in 0..10 {
            for t in 40..50 {
                if s == t {
                    continue;
                }
                total += 1;
                if greedy_route(&udg, s, t, 200).delivered() {
                    delivered += 1;
                }
            }
        }
        // Dense UDG: greedy succeeds almost always.
        assert!(delivered * 10 >= total * 9, "{delivered}/{total}");
    }

    #[test]
    fn greedy_gets_stuck_in_voids() {
        // Greedy from 0 to 4 walks into the dead end at node 1 (which is
        // closer to the target than the detour through 2 and 3).
        use geospan_graph::Point;
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0), // dead end, distance 1 from target
                Point::new(0.0, 1.0),
                Point::new(1.2, 1.0),
                Point::new(2.0, 0.0), // target
            ],
            [(0, 1), (0, 2), (2, 3), (3, 4)],
        );
        let r = greedy_route(&g, 0, 4, 10);
        assert_eq!(r.outcome, RouteOutcome::Stuck);
        assert_eq!(r.path, vec![0, 1]);
        // GPSR recovers around the void.
        let r = gpsr_route(&g, 0, 4, 20);
        assert!(r.delivered(), "path {:?}", r.path);
    }

    #[test]
    fn gpsr_delivers_on_planar_gabriel_graph() {
        for seed in 0..4 {
            let (_pts, udg, _s) = connected_unit_disk(60, 150.0, 40.0, seed * 19 + 1);
            let gg = gabriel(&udg);
            assert!(gg.is_connected());
            let n = gg.node_count();
            for s in (0..n).step_by(7) {
                for t in (0..n).step_by(11) {
                    let r = gpsr_route(&gg, s, t, 50 * n);
                    assert!(
                        r.delivered(),
                        "seed {seed}: {s} -> {t} failed ({:?}, path {:?})",
                        r.outcome,
                        r.path
                    );
                }
            }
        }
    }

    #[test]
    fn gpsr_route_stats_are_consistent() {
        let (_pts, udg, _s) = connected_unit_disk(40, 120.0, 45.0, 2);
        let gg = gabriel(&udg);
        let r = gpsr_route(&gg, 0, 39, 2000);
        assert!(r.delivered());
        assert_eq!(r.hops(), r.path.len() - 1);
        assert!(r.length(&gg) > 0.0);
        for w in r.path.windows(2) {
            assert!(gg.has_edge(w[0], w[1]), "route uses non-edges");
        }
    }

    #[test]
    fn backbone_route_delivers_everywhere() {
        for seed in 0..3 {
            let (_pts, udg, _s) = connected_unit_disk(60, 150.0, 45.0, seed * 23 + 4);
            let b = BackboneBuilder::new(BackboneConfig::new(45.0))
                .build(&udg)
                .unwrap();
            let n = udg.node_count();
            for s in (0..n).step_by(5) {
                for t in (0..n).step_by(9) {
                    let r = backbone_route(&b, &udg, s, t, 50 * n);
                    assert!(
                        r.delivered(),
                        "seed {seed}: {s} -> {t} failed ({:?})",
                        r.outcome
                    );
                    // The route is a real walk in ICDS' ∪ LDel(ICDS').
                    for w in r.path.windows(2) {
                        assert!(
                            b.ldel_icds_prime().has_edge(w[0], w[1]) || udg.has_edge(w[0], w[1]),
                            "seed {seed}: hop {:?} not an edge",
                            w
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unreachable_destination_reports_stuck() {
        use geospan_graph::Point;
        // Two disconnected pairs.
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(11.0, 0.0),
            ],
            [(0, 1), (2, 3)],
        );
        let r = gpsr_route(&g, 0, 3, 100);
        assert_eq!(r.outcome, RouteOutcome::Stuck);
        let r = greedy_route(&g, 0, 3, 100);
        assert_eq!(r.outcome, RouteOutcome::Stuck);
    }

    #[test]
    fn face_route_delivers_on_planar_graphs() {
        for seed in 0..3 {
            let (_pts, udg, _s) = connected_unit_disk(50, 140.0, 40.0, seed * 83 + 2);
            let gg = gabriel(&udg);
            let n = gg.node_count();
            for s in (0..n).step_by(5) {
                for t in (1..n).step_by(7) {
                    if s == t {
                        continue;
                    }
                    let r = face_route(&gg, s, t, 200 * n);
                    assert!(r.delivered(), "seed {seed}: {s} -> {t} ({:?})", r.outcome);
                    for w in r.path.windows(2) {
                        assert!(gg.has_edge(w[0], w[1]));
                    }
                }
            }
        }
    }

    #[test]
    fn face_route_is_no_shorter_than_gpsr_on_average() {
        let (_pts, udg, _s) = connected_unit_disk(60, 140.0, 40.0, 4);
        let gg = gabriel(&udg);
        let n = gg.node_count();
        let mut face_hops = 0usize;
        let mut gpsr_hops = 0usize;
        for s in (0..n).step_by(4) {
            for t in (1..n).step_by(6) {
                if s == t {
                    continue;
                }
                face_hops += face_route(&gg, s, t, 200 * n).hops();
                gpsr_hops += gpsr_route(&gg, s, t, 200 * n).hops();
            }
        }
        assert!(
            face_hops >= gpsr_hops,
            "face {face_hops} vs gpsr {gpsr_hops}"
        );
    }

    #[test]
    fn face_route_degenerate_cases() {
        use geospan_graph::Point;
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(9.0, 9.0),
            ],
            [(0, 1)],
        );
        assert!(face_route(&g, 0, 0, 10).delivered());
        assert_eq!(face_route(&g, 2, 0, 10).outcome, RouteOutcome::Stuck);
        assert_eq!(face_route(&g, 0, 2, 10).outcome, RouteOutcome::Stuck);
        assert!(face_route(&g, 0, 1, 10).delivered());
    }

    #[test]
    fn backbone_broadcast_reaches_everyone_cheaply() {
        for seed in 0..4 {
            let (_pts, udg, _s) = connected_unit_disk(80, 150.0, 45.0, seed * 7 + 1);
            let b = BackboneBuilder::new(BackboneConfig::new(45.0))
                .build(&udg)
                .unwrap();
            let n = udg.node_count();
            for src in [0, n / 2, n - 1] {
                let r = backbone_broadcast(&b, &udg, src);
                assert_eq!(r.reached, n, "seed {seed}, src {src}");
                // At most source + every backbone node transmits.
                assert!(
                    r.transmissions <= b.backbone_nodes().len() + 1,
                    "seed {seed}: {} transmissions",
                    r.transmissions
                );
                // Strictly cheaper than flooding on non-trivial fields.
                assert!(r.transmissions < flood_transmissions(&udg, src));
            }
        }
    }

    #[test]
    fn flood_counts_component_size() {
        use geospan_graph::Point;
        let g = Graph::with_edges(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(10.0, 0.0),
            ],
            [(0, 1), (1, 2)],
        );
        assert_eq!(flood_transmissions(&g, 0), 3);
        assert_eq!(flood_transmissions(&g, 3), 1);
    }

    #[test]
    fn forward_api_reproduces_whole_routes() {
        let (_pts, udg, _s) = connected_unit_disk(60, 150.0, 40.0, 9);
        let gg = gabriel(&udg);
        let b = BackboneBuilder::new(BackboneConfig::new(40.0))
            .build(&udg)
            .unwrap();
        let n = gg.node_count();
        let walk = |mut step: Box<dyn FnMut(usize) -> Decision + '_>, s: usize| {
            let mut path = vec![s];
            let mut u = s;
            loop {
                match step(u) {
                    Decision::Arrived => break,
                    Decision::Forward(v) => {
                        path.push(v);
                        u = v;
                    }
                    Decision::Stuck => break,
                }
                assert!(path.len() <= 100 * n, "runaway walk");
            }
            path
        };
        for (s, t) in [(0, n - 1), (3, n / 2), (n - 1, 1), (7, 7)] {
            let mut gpsr = GpsrState::new();
            let path = walk(Box::new(|u| gpsr_forward(&gg, &mut gpsr, u, t)), s);
            assert_eq!(path, gpsr_route(&gg, s, t, 100 * n).path);

            let mut session = BackboneSession::new();
            let path = walk(
                Box::new(|u| backbone_forward(&b, &udg, &mut session, u, t)),
                s,
            );
            assert_eq!(path, backbone_route(&b, &udg, s, t, 100 * n).path);

            let path = walk(Box::new(|u| greedy_forward(&udg, u, t)), s);
            assert_eq!(path, greedy_route(&udg, s, t, 100 * n).path);
        }
    }

    #[test]
    fn self_route_is_trivial() {
        let (_pts, udg, _s) = connected_unit_disk(20, 100.0, 50.0, 1);
        let b = BackboneBuilder::new(BackboneConfig::new(50.0))
            .build(&udg)
            .unwrap();
        let r = backbone_route(&b, &udg, 7, 7, 10);
        assert!(r.delivered());
        assert_eq!(r.path, vec![7]);
        assert_eq!(r.hops(), 0);
    }
}
