//! One-call verification of the paper's guarantees on a built backbone.
//!
//! Downstream users (and this workspace's own tests and examples) can
//! validate any [`Backbone`] against its unit disk graph and get a
//! structured, printable report of the five headline properties.

use std::fmt;

use geospan_graph::planarity::{crossing_count, is_plane_embedding};
use geospan_graph::stats::degree_stats_over;
use geospan_graph::stretch::{stretch_factors, StretchOptions};
use geospan_graph::Graph;

use crate::{Backbone, Role};

/// The verified properties of a backbone.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyReport {
    /// Property 1: `LDel(ICDS)` is a plane embedding.
    pub planar: bool,
    /// Number of crossing edge pairs when not planar (diagnostic).
    pub crossings: usize,
    /// Property 2: maximum degree over backbone nodes in `LDel(ICDS)`.
    pub backbone_max_degree: usize,
    /// Property 3a: maximum length stretch of `LDel(ICDS')` vs the UDG
    /// (over pairs separated by more than one radius).
    pub length_stretch_max: f64,
    /// Property 3b: maximum hop stretch of `LDel(ICDS')` vs the UDG.
    pub hop_stretch_max: f64,
    /// Property 3c: UDG-connected pairs disconnected in the backbone
    /// (zero for a spanner).
    pub disconnected_pairs: usize,
    /// Property 4: edge count of `LDel(ICDS')` (should be `O(n)`).
    pub spanning_edges: usize,
    /// Lemma 1: every dominatee has at most five adjacent dominators.
    pub lemma1_ok: bool,
    /// Dominator count.
    pub dominators: usize,
    /// Connector count.
    pub connectors: usize,
    /// Node count.
    pub nodes: usize,
}

impl PropertyReport {
    /// True when every checked guarantee holds.
    pub fn all_ok(&self) -> bool {
        self.planar && self.disconnected_pairs == 0 && self.lemma1_ok
    }
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "backbone over {} nodes: {} dominators + {} connectors",
            self.nodes, self.dominators, self.connectors
        )?;
        writeln!(
            f,
            "  planar:          {} ({} crossings)",
            if self.planar { "yes" } else { "NO" },
            self.crossings
        )?;
        writeln!(f, "  max degree:      {}", self.backbone_max_degree)?;
        writeln!(
            f,
            "  stretch:         length <= {:.3}, hops <= {:.3}",
            self.length_stretch_max, self.hop_stretch_max
        )?;
        writeln!(
            f,
            "  spans all pairs: {} ({} lost)",
            if self.disconnected_pairs == 0 {
                "yes"
            } else {
                "NO"
            },
            self.disconnected_pairs
        )?;
        writeln!(f, "  spanning edges:  {}", self.spanning_edges)?;
        write!(
            f,
            "  Lemma 1 (<= 5 dominators per node): {}",
            if self.lemma1_ok { "yes" } else { "NO" }
        )
    }
}

/// Verifies a backbone against the unit disk graph it was built from.
///
/// `radius` is used as the pair-separation threshold for the length
/// stretch, matching the paper's measurement convention.
///
/// # Panics
/// Panics if `udg`'s node count differs from the backbone's.
///
/// # Example
/// ```
/// use geospan_core::{verify, BackboneBuilder, BackboneConfig};
/// use geospan_graph::gen::connected_unit_disk;
///
/// let (_pts, udg, _s) = connected_unit_disk(40, 120.0, 45.0, 2);
/// let b = BackboneBuilder::new(BackboneConfig::new(45.0)).build(&udg).unwrap();
/// let report = verify(&b, &udg, 45.0);
/// assert!(report.all_ok());
/// ```
pub fn verify(backbone: &Backbone, udg: &Graph, radius: f64) -> PropertyReport {
    assert_eq!(
        udg.node_count(),
        backbone.roles().len(),
        "UDG and backbone must share the vertex set"
    );
    let planar = is_plane_embedding(backbone.ldel_icds());
    let crossings = if planar {
        0
    } else {
        crossing_count(backbone.ldel_icds())
    };
    let stretch = stretch_factors(
        udg,
        backbone.ldel_icds_prime(),
        StretchOptions {
            min_euclidean_separation: radius,
        },
    );
    let lemma1_ok = backbone
        .cds_graphs()
        .dominators_of
        .iter()
        .all(|d| d.len() <= 5);
    let (mut dominators, mut connectors) = (0, 0);
    for r in backbone.roles() {
        match r {
            Role::Dominator => dominators += 1,
            Role::Connector => connectors += 1,
            Role::Dominatee => {}
        }
    }
    PropertyReport {
        planar,
        crossings,
        backbone_max_degree: degree_stats_over(backbone.ldel_icds(), backbone.backbone_nodes()).max,
        length_stretch_max: stretch.length_max,
        hop_stretch_max: stretch.hop_max,
        disconnected_pairs: stretch.disconnected_pairs,
        spanning_edges: backbone.ldel_icds_prime().edge_count(),
        lemma1_ok,
        dominators,
        connectors,
        nodes: udg.node_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackboneBuilder, BackboneConfig};
    use geospan_graph::gen::connected_unit_disk;

    #[test]
    fn healthy_backbone_verifies() {
        let (_pts, udg, _s) = connected_unit_disk(60, 150.0, 45.0, 9);
        let b = BackboneBuilder::new(BackboneConfig::new(45.0))
            .build(&udg)
            .unwrap();
        let r = verify(&b, &udg, 45.0);
        assert!(r.all_ok());
        assert_eq!(r.nodes, 60);
        assert_eq!(r.dominators + r.connectors, b.backbone_nodes().len());
        assert!(r.length_stretch_max >= 1.0);
        let text = r.to_string();
        assert!(text.contains("planar:          yes"));
        assert!(text.contains("Lemma 1"));
    }

    #[test]
    fn report_flags_problems() {
        // Hand-build a degenerate report to exercise the formatting paths.
        let r = PropertyReport {
            planar: false,
            crossings: 3,
            backbone_max_degree: 7,
            length_stretch_max: 2.0,
            hop_stretch_max: 2.0,
            disconnected_pairs: 1,
            spanning_edges: 10,
            lemma1_ok: false,
            dominators: 2,
            connectors: 1,
            nodes: 9,
        };
        assert!(!r.all_ok());
        let text = r.to_string();
        assert!(text.contains("NO (3 crossings)"));
        assert!(text.contains("(1 lost)"));
    }
}
