//! The geospan core: planar bounded-degree spanner backbones for wireless
//! ad hoc networks.
//!
//! This crate assembles the full pipeline of Wang & Li (ICDCS 2002):
//!
//! 1. cluster the unit disk graph into dominators and dominatees
//!    (maximal independent set election),
//! 2. elect connectors to join all 2- and 3-hop dominator pairs —
//!    dominators + connectors form the **CDS backbone**,
//! 3. planarize the induced backbone graph `ICDS` with the localized
//!    Delaunay triangulation, yielding **`LDel(ICDS)`** — a planar graph
//!    with constant maximum degree that is a spanner of the UDG for both
//!    hops and Euclidean length (after re-attaching the dominatee edges,
//!    `LDel(ICDS')`).
//!
//! [`BackboneBuilder`] runs the pipeline either with centralized
//! reference algorithms or as real message-passing protocols with
//! measured communication costs; [`routing`] provides the geographic
//! routing algorithms (greedy, GPSR-style greedy+perimeter, and
//! dominating-set-based backbone routing) the backbone exists to serve.
//!
//! # Example
//!
//! ```
//! use geospan_core::{BackboneBuilder, BackboneConfig};
//! use geospan_graph::gen::connected_unit_disk;
//! use geospan_graph::planarity::is_plane_embedding;
//!
//! let (_pts, udg, _seed) = connected_unit_disk(60, 200.0, 60.0, 7);
//! let backbone = BackboneBuilder::new(BackboneConfig::new(60.0))
//!     .build(&udg)
//!     .unwrap();
//! assert!(is_plane_embedding(backbone.ldel_icds()));
//! assert!(backbone.ldel_icds_prime().is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backbone;
pub mod maintenance;
pub mod routing;
mod verify;

pub use backbone::{Backbone, BackboneBuilder, BackboneConfig, BackboneError, BackboneStats};
pub use geospan_cds::{ClusterRank, Role};
pub use verify::{verify, PropertyReport};
