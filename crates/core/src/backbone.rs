//! The backbone construction pipeline.

use std::fmt;

use geospan_cds::{
    build_cds,
    protocol::{run_cds, run_cds_faulty},
    CdsGraphs, ClusterRank, Role,
};
use geospan_graph::Graph;
use geospan_sim::{FaultPlan, FaultReport, MessageStats, QuiescenceTimeout, ReliabilityConfig};
use geospan_topology::distributed::{run_ldel, run_ldel_faulty};
use geospan_topology::ldel::{planarized, LocalDelaunay};

/// Configuration of the backbone pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct BackboneConfig {
    /// The transmission radius that defined the unit disk graph. Needed
    /// by the distributed triangulation protocol (nodes decide locally
    /// whether two heard positions are within range).
    pub radius: f64,
    /// The clustering election criterion.
    pub rank: ClusterRank,
    /// When true, run the real message-passing protocols and record
    /// per-node message statistics; when false, use the (identical in
    /// output, faster) centralized reference algorithms.
    pub distributed: bool,
    /// Faults injected into the distributed protocols. A non-zero plan
    /// implies the distributed construction (faults are a property of the
    /// radio layer, which the centralized reference has no notion of).
    pub faults: Option<FaultPlan>,
    /// Link-layer ack/retransmit parameters used when faults are active.
    pub reliability: ReliabilityConfig,
}

impl BackboneConfig {
    /// A default configuration for the given transmission radius:
    /// lowest-id clustering, centralized construction.
    ///
    /// # Panics
    /// Panics unless `radius` is positive and finite.
    pub fn new(radius: f64) -> Self {
        assert!(
            radius > 0.0 && radius.is_finite(),
            "radius must be positive"
        );
        BackboneConfig {
            radius,
            rank: ClusterRank::LowestId,
            distributed: false,
            faults: None,
            reliability: ReliabilityConfig::default(),
        }
    }

    /// Switches to the distributed (message-passing) construction.
    pub fn distributed(mut self) -> Self {
        self.distributed = true;
        self
    }

    /// Uses a different clustering rank.
    pub fn with_rank(mut self, rank: ClusterRank) -> Self {
        self.rank = rank;
        self
    }

    /// Injects a fault plan into the radio layer. A non-zero plan also
    /// switches to the distributed construction.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        if !plan.is_zero() {
            self.distributed = true;
        }
        self.faults = Some(plan);
        self
    }

    /// Sets the link-layer ack/retransmit parameters used under faults.
    pub fn with_reliability(mut self, reliability: ReliabilityConfig) -> Self {
        self.reliability = reliability;
        self
    }
}

impl Default for BackboneConfig {
    /// Unit transmission radius, lowest-id clustering, centralized.
    fn default() -> Self {
        BackboneConfig::new(1.0)
    }
}

/// Per-stage message statistics of a distributed construction.
#[derive(Debug, Clone)]
pub struct BackboneStats {
    /// Messages of the clustering + connector protocol.
    pub cds: MessageStats,
    /// Messages of the localized Delaunay protocol over `ICDS`.
    pub ldel: MessageStats,
}

impl BackboneStats {
    /// Per-node totals across both stages, plus the one status broadcast
    /// per node that materializes `ICDS` from `CDS` (every node tells its
    /// neighbors whether it is a dominator, dominatee, or connector).
    pub fn total_per_node(&self) -> Vec<usize> {
        self.cds
            .sent_per_node()
            .iter()
            .zip(self.ldel.sent_per_node())
            .map(|(a, b)| a + b + 1)
            .collect()
    }
}

/// Error constructing a backbone.
#[derive(Debug, Clone, PartialEq)]
pub enum BackboneError {
    /// A UDG edge is longer than the configured radius: the graph was not
    /// built with this radius.
    InvalidRadius {
        /// The configured radius.
        radius: f64,
        /// The offending edge length found.
        edge_length: f64,
    },
    /// A distributed phase failed to reach quiescence (protocol bug).
    Protocol(QuiescenceTimeout),
}

impl fmt::Display for BackboneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackboneError::InvalidRadius { radius, edge_length } => write!(
                f,
                "unit disk graph has an edge of length {edge_length} exceeding the configured radius {radius}"
            ),
            BackboneError::Protocol(t) => write!(f, "distributed construction failed: {t}"),
        }
    }
}

impl std::error::Error for BackboneError {}

impl From<QuiescenceTimeout> for BackboneError {
    fn from(t: QuiescenceTimeout) -> Self {
        BackboneError::Protocol(t)
    }
}

/// The complete constructed backbone: every derived graph of the paper
/// over the shared vertex set.
#[derive(Debug, Clone)]
pub struct Backbone {
    cds_graphs: CdsGraphs,
    ldel_icds: LocalDelaunay,
    ldel_icds_prime: Graph,
    stats: Option<BackboneStats>,
    fault_report: Option<FaultReport>,
}

impl Backbone {
    /// Per-node roles (dominator / connector / dominatee).
    pub fn roles(&self) -> &[Role] {
        &self.cds_graphs.roles
    }

    /// The CDS family of graphs (`CDS`, `CDS'`, `ICDS`, `ICDS'`).
    pub fn cds_graphs(&self) -> &CdsGraphs {
        &self.cds_graphs
    }

    /// The planar backbone `LDel(ICDS)`.
    pub fn ldel_icds(&self) -> &Graph {
        &self.ldel_icds.graph
    }

    /// The planar backbone with its certifying triangles and Gabriel
    /// edges.
    pub fn ldel_icds_full(&self) -> &LocalDelaunay {
        &self.ldel_icds
    }

    /// `LDel(ICDS')`: the planar backbone plus all dominatee–dominator
    /// edges — the routing topology spanning every node.
    pub fn ldel_icds_prime(&self) -> &Graph {
        &self.ldel_icds_prime
    }

    /// Message statistics, present when the backbone was built with
    /// [`BackboneConfig::distributed`].
    pub fn stats(&self) -> Option<&BackboneStats> {
        self.stats.as_ref()
    }

    /// The combined fault report of both protocol stages, present when
    /// the backbone was built under a fault plan.
    pub fn fault_report(&self) -> Option<&FaultReport> {
        self.fault_report.as_ref()
    }

    /// Assembles a backbone from an already-computed graph family — the
    /// localized-repair entry point (see
    /// [`crate::maintenance::MobileBackbone`]): repair re-elects inside an
    /// affected neighborhood, re-assembles the family, and re-derives the
    /// planar layer here.
    pub(crate) fn from_graphs(cds_graphs: CdsGraphs) -> Backbone {
        let ldel_icds = planarized(&cds_graphs.icds);
        let mut ldel_icds_prime = ldel_icds.graph.clone();
        for (w, doms) in cds_graphs.dominators_of.iter().enumerate() {
            for &d in doms {
                ldel_icds_prime.add_edge(w, d);
            }
        }
        Backbone {
            cds_graphs,
            ldel_icds,
            ldel_icds_prime,
            stats: None,
            fault_report: None,
        }
    }

    /// Backbone node indices (dominators + connectors).
    pub fn backbone_nodes(&self) -> Vec<usize> {
        self.cds_graphs.backbone_nodes()
    }

    /// Removes a departed **dominatee** from the logical structures.
    ///
    /// Only valid for plain dominatees: they carry no routing state, so
    /// clipping their edges leaves every backbone property intact (this
    /// is the cheap half of the maintenance policy). Used by
    /// [`crate::maintenance::MobileBackbone`].
    ///
    /// # Panics
    /// Panics if `v` is a dominator or connector.
    pub(crate) fn clip_dominatee(&mut self, v: usize) {
        assert_eq!(
            self.cds_graphs.roles[v],
            Role::Dominatee,
            "only plain dominatees can be clipped"
        );
        let clip = |g: &mut Graph| {
            let nbrs: Vec<usize> = g.neighbors(v).to_vec();
            for w in nbrs {
                g.remove_edge(v, w);
            }
        };
        clip(&mut self.ldel_icds_prime);
        clip(&mut self.cds_graphs.cds_prime);
        clip(&mut self.cds_graphs.icds_prime);
        self.cds_graphs.dominators_of[v].clear();
    }

    /// Attaches a newcomer as a plain dominatee of the given (adjacent)
    /// dominators, extending every derived graph by one node — the cheap
    /// half of node arrival. Used by
    /// [`crate::maintenance::MobileBackbone`].
    ///
    /// # Panics
    /// Panics if `dominators` is empty (the newcomer would be
    /// undominated, which requires a rebuild instead).
    pub(crate) fn attach_dominatee(
        &mut self,
        position: geospan_geometry::Point,
        dominators: &[usize],
    ) -> usize {
        assert!(
            !dominators.is_empty(),
            "an uncovered newcomer requires a backbone rebuild"
        );
        let v = self.cds_graphs.cds.push_node(position);
        self.cds_graphs.cds_prime.push_node(position);
        self.cds_graphs.icds.push_node(position);
        self.cds_graphs.icds_prime.push_node(position);
        self.ldel_icds.graph.push_node(position);
        self.ldel_icds_prime.push_node(position);
        self.cds_graphs.roles.push(Role::Dominatee);
        let mut doms = dominators.to_vec();
        doms.sort_unstable();
        for &d in &doms {
            self.cds_graphs.cds_prime.add_edge(v, d);
            self.cds_graphs.icds_prime.add_edge(v, d);
            self.ldel_icds_prime.add_edge(v, d);
        }
        self.cds_graphs.dominators_of.push(doms);
        v
    }

    /// Re-attaches a previously departed node `v` as a plain dominatee
    /// of the given (adjacent) dominators — the cheap half of a node
    /// re-joining under churn. The node already exists in every derived
    /// graph (isolated, parked); only its logical links are restored.
    ///
    /// The parked position embedded in the derived graphs is *not*
    /// rewritten: a plain dominatee is never a backbone node, so GPSR
    /// over `LDel(ICDS)` never reads it, and ingress/egress decisions
    /// are purely topological (`dominators_of`). Physical positions
    /// always come from the caller's unit disk graph.
    ///
    /// # Panics
    /// Panics if `dominators` is empty or if `v` is not an isolated
    /// dominatee.
    pub(crate) fn reattach_dominatee(&mut self, v: usize, dominators: &[usize]) {
        assert!(
            !dominators.is_empty(),
            "an uncovered rejoiner requires a backbone rebuild"
        );
        assert_eq!(
            self.cds_graphs.roles[v],
            Role::Dominatee,
            "only a departed dominatee can re-attach"
        );
        assert_eq!(
            self.ldel_icds_prime.degree(v),
            0,
            "re-attaching node {v} still has logical links"
        );
        let mut doms = dominators.to_vec();
        doms.sort_unstable();
        for &d in &doms {
            self.cds_graphs.cds_prime.add_edge(v, d);
            self.cds_graphs.icds_prime.add_edge(v, d);
            self.ldel_icds_prime.add_edge(v, d);
        }
        self.cds_graphs.dominators_of[v] = doms;
    }

    /// Demotes isolated nodes to plain dominatees, purging them from the
    /// dominator and connector registries.
    ///
    /// A from-scratch rebuild clusters every index, and a departed
    /// (parked, radio-silent) node is isolated in the unit disk graph —
    /// so the greedy MIS dutifully crowns it dominator of its own empty
    /// cluster, leaving a dangling rank entry with no coverage duty.
    /// Maintenance calls this after every rebuild to scrub those ghosts.
    ///
    /// # Panics
    /// Debug-panics if a node to demote still has backbone edges.
    pub(crate) fn demote_isolated(&mut self, nodes: impl IntoIterator<Item = usize>) {
        for v in nodes {
            debug_assert_eq!(
                self.ldel_icds_prime.degree(v),
                0,
                "demoting node {v} with live logical links"
            );
            self.cds_graphs.roles[v] = Role::Dominatee;
            self.cds_graphs.dominators.retain(|&d| d != v);
            self.cds_graphs.connectors.retain(|&c| c != v);
            self.cds_graphs.dominators_of[v].clear();
        }
    }
}

/// Builds [`Backbone`]s from unit disk graphs.
#[derive(Debug, Clone)]
pub struct BackboneBuilder {
    config: BackboneConfig,
}

impl BackboneBuilder {
    /// A builder with the given configuration.
    pub fn new(config: BackboneConfig) -> Self {
        BackboneBuilder { config }
    }

    /// Runs the pipeline on a unit disk graph.
    ///
    /// # Errors
    /// * [`BackboneError::InvalidRadius`] when `udg` contains an edge
    ///   longer than the configured radius,
    /// * [`BackboneError::Protocol`] when a distributed phase fails to
    ///   converge (indicates a bug, not an input condition).
    pub fn build(&self, udg: &Graph) -> Result<Backbone, BackboneError> {
        for (u, v) in udg.edges() {
            let len = udg.edge_length(u, v);
            if len > self.config.radius {
                return Err(BackboneError::InvalidRadius {
                    radius: self.config.radius,
                    edge_length: len,
                });
            }
        }

        if let Some(plan) = self.config.faults.as_ref().filter(|p| !p.is_zero()) {
            return self.build_faulty(udg, plan);
        }

        let (cds_graphs, stats) = if self.config.distributed {
            let (g, cds_stats) = run_cds(udg, &self.config.rank)?;
            let ldel_out = run_ldel(&g.icds, self.config.radius)?;
            let stats = BackboneStats {
                cds: cds_stats,
                ldel: ldel_out.stats,
            };
            (g, Some((ldel_out.ldel, stats)))
        } else {
            (build_cds(udg, &self.config.rank), None)
        };

        let (ldel_icds, stats) = match stats {
            Some((ldel, s)) => (ldel, Some(s)),
            None => (planarized(&cds_graphs.icds), None),
        };

        let mut ldel_icds_prime = ldel_icds.graph.clone();
        for (w, doms) in cds_graphs.dominators_of.iter().enumerate() {
            for &d in doms {
                ldel_icds_prime.add_edge(w, d);
            }
        }

        Ok(Backbone {
            cds_graphs,
            ldel_icds,
            ldel_icds_prime,
            stats,
            fault_report: None,
        })
    }

    /// The fault-injected pipeline: both protocol stages run over the
    /// unreliable radio with the configured ack/retransmit layer, and the
    /// plan carries over between stages — a node crashing during the
    /// triangulation stage is scheduled relative to the rounds the
    /// clustering stage already consumed.
    fn build_faulty(&self, udg: &Graph, plan: &FaultPlan) -> Result<Backbone, BackboneError> {
        let (cds_graphs, cds_stats, cds_report) =
            run_cds_faulty(udg, &self.config.rank, plan, self.config.reliability)?;
        let ldel_plan = plan.for_next_stage(cds_report.rounds);
        let (ldel_out, ldel_report) = run_ldel_faulty(
            &cds_graphs.icds,
            self.config.radius,
            &ldel_plan,
            self.config.reliability,
        )?;
        let mut report = cds_report;
        report.absorb(&ldel_report);

        let stats = BackboneStats {
            cds: cds_stats,
            ldel: ldel_out.stats,
        };
        let ldel_icds = ldel_out.ldel;
        let mut ldel_icds_prime = ldel_icds.graph.clone();
        for (w, doms) in cds_graphs.dominators_of.iter().enumerate() {
            for &d in doms {
                ldel_icds_prime.add_edge(w, d);
            }
        }

        Ok(Backbone {
            cds_graphs,
            ldel_icds,
            ldel_icds_prime,
            stats: Some(stats),
            fault_report: Some(report),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_graph::gen::connected_unit_disk;
    use geospan_graph::planarity::is_plane_embedding;
    use geospan_graph::stats::degree_stats_over;
    use geospan_graph::stretch::{stretch_factors, StretchOptions};

    fn build(seed: u64, distributed: bool) -> (Graph, Backbone) {
        let (_pts, udg, _s) = connected_unit_disk(70, 150.0, 45.0, seed);
        let mut config = BackboneConfig::new(45.0);
        if distributed {
            config = config.distributed();
        }
        let b = BackboneBuilder::new(config).build(&udg).unwrap();
        (udg, b)
    }

    #[test]
    fn planar_backbone() {
        for seed in 0..5 {
            let (_udg, b) = build(seed * 3, false);
            assert!(is_plane_embedding(b.ldel_icds()), "seed {seed}");
        }
    }

    #[test]
    fn backbone_spans_and_connects() {
        for seed in 0..5 {
            let (udg, b) = build(seed * 7 + 1, false);
            assert!(b.ldel_icds_prime().is_connected(), "seed {seed}");
            // Spanner sanity: bounded observed stretch.
            let r = stretch_factors(
                &udg,
                b.ldel_icds_prime(),
                StretchOptions {
                    min_euclidean_separation: 45.0,
                },
            );
            assert_eq!(r.disconnected_pairs, 0, "seed {seed}");
            assert!(r.length_max < 10.0, "seed {seed}: stretch {}", r.length_max);
        }
    }

    #[test]
    fn backbone_degree_is_modest() {
        for seed in 0..5 {
            let (_udg, b) = build(seed * 11 + 2, false);
            let nodes = b.backbone_nodes();
            let s = degree_stats_over(b.ldel_icds(), nodes.iter().copied());
            // The theory guarantees a (large) constant; empirically small.
            assert!(s.max <= 20, "seed {seed}: backbone max degree {}", s.max);
        }
    }

    #[test]
    fn distributed_matches_centralized_pipeline() {
        for seed in 0..3 {
            let (_udg, central) = build(seed * 13 + 3, false);
            let (_udg2, dist) = build(seed * 13 + 3, true);
            assert_eq!(central.roles(), dist.roles(), "seed {seed}");
            let ce: Vec<_> = central.ldel_icds().edges().collect();
            let de: Vec<_> = dist.ldel_icds().edges().collect();
            assert_eq!(ce, de, "seed {seed}");
            assert!(dist.stats().is_some());
            assert!(central.stats().is_none());
        }
    }

    #[test]
    fn per_node_cost_is_constant() {
        let (_udg, b) = build(42, true);
        let stats = b.stats().unwrap();
        let total = stats.total_per_node();
        let max = total.iter().copied().max().unwrap();
        assert!(max <= 150, "per-node cost {max}");
    }

    #[test]
    fn loss_with_retries_reproduces_the_fault_free_backbone() {
        // With a deep retry budget every message eventually lands, so the
        // constructed backbone is identical — only the cost changes.
        let (_pts, udg, _s) = connected_unit_disk(50, 150.0, 45.0, 21);
        let clean = BackboneBuilder::new(BackboneConfig::new(45.0).distributed())
            .build(&udg)
            .unwrap();
        let config = BackboneConfig::new(45.0)
            .with_faults(FaultPlan::new(5).with_loss(0.1))
            .with_reliability(ReliabilityConfig {
                max_retries: 8,
                ack_timeout: 2,
            });
        let faulty = BackboneBuilder::new(config).build(&udg).unwrap();
        let report = faulty.fault_report().expect("fault report present");
        assert!(report.dropped > 0);
        assert!(report.retransmissions > 0);
        assert!(report.crashed.is_empty());
        assert_eq!(faulty.roles(), clean.roles());
        assert_eq!(
            faulty.ldel_icds().edges().collect::<Vec<_>>(),
            clean.ldel_icds().edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn crash_during_construction_spans_the_survivors() {
        use geospan_graph::paths::bfs_hops;
        for seed in 0..3 {
            let (_pts, udg, _s) = connected_unit_disk(60, 150.0, 45.0, seed * 31 + 2);
            let victim = (seed as usize * 17 + 9) % 60;
            let config = BackboneConfig::new(45.0)
                .with_faults(
                    FaultPlan::new(seed + 1)
                        .with_loss(0.1)
                        .with_crash(victim, 3),
                )
                .with_reliability(ReliabilityConfig {
                    max_retries: 8,
                    ack_timeout: 2,
                });
            let b = BackboneBuilder::new(config).build(&udg).unwrap();
            let report = b.fault_report().unwrap();
            assert!(report.crashed.contains(&victim), "seed {seed}");

            // Survivors in one alive-UDG component stay mutually
            // reachable through the alive part of LDel(ICDS').
            let alive = |v: usize| !report.crashed.contains(&v);
            let alive_udg = udg.filter_edges(|u, v| alive(u) && alive(v));
            let routing = b
                .ldel_icds_prime()
                .filter_edges(|u, v| alive(u) && alive(v));
            for comp in alive_udg.components() {
                let members: Vec<usize> = comp.iter().copied().filter(|&v| alive(v)).collect();
                if members.len() < 2 {
                    continue;
                }
                let hops = bfs_hops(&routing, members[0]);
                for &v in &members {
                    assert!(
                        hops[v].is_some(),
                        "seed {seed}: survivor {v} unreachable in routing graph"
                    );
                }
            }
        }
    }

    #[test]
    fn invalid_radius_detected() {
        let (_pts, udg, _s) = connected_unit_disk(20, 100.0, 50.0, 0);
        let err = BackboneBuilder::new(BackboneConfig::new(10.0))
            .build(&udg)
            .unwrap_err();
        assert!(matches!(err, BackboneError::InvalidRadius { .. }));
        assert!(err.to_string().contains("exceeding"));
    }

    #[test]
    fn config_builder_methods() {
        let c = BackboneConfig::new(2.0)
            .distributed()
            .with_rank(ClusterRank::HighestDegree);
        assert!(c.distributed);
        assert_eq!(c.rank, ClusterRank::HighestDegree);
        assert_eq!(c.radius, 2.0);
        let d = BackboneConfig::default();
        assert_eq!(d.radius, 1.0);
    }
}
