//! Backbone maintenance under node mobility.
//!
//! The paper's deployment claim (§I): "our algorithms do not need to
//! update the network topology when nodes are moving as long as no link
//! used in the final network topology is broken. … although the actual
//! physical deployment is no longer a planar graph when nodes are moving,
//! the logical network topology is still a planar graph."
//!
//! [`MobileBackbone`] packages that policy: it owns the current positions
//! and backbone, accepts position updates, and rebuilds only when a
//! *used* link exceeds the transmission radius (or a node leaves the
//! radio range of its entire old neighborhood, splitting the logical
//! structure).

use geospan_geometry::Point;
use geospan_graph::gen::UnitDiskBuilder;
use geospan_graph::Graph;

use crate::{Backbone, BackboneBuilder, BackboneConfig, BackboneError};

/// What a position update did to the backbone.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenanceReport {
    /// Logical links whose endpoints moved out of range.
    pub broken_links: Vec<(usize, usize)>,
    /// Whether the backbone was rebuilt.
    pub rebuilt: bool,
}

/// A backbone plus the mobility policy around it.
///
/// # Example
/// ```
/// use geospan_core::maintenance::MobileBackbone;
/// use geospan_core::BackboneConfig;
/// use geospan_graph::gen::uniform_points;
///
/// let pts = uniform_points(50, 150.0, 3);
/// let mut mobile = MobileBackbone::new(pts.clone(), BackboneConfig::new(60.0)).unwrap();
/// // A no-op update never rebuilds.
/// let report = mobile.update_positions(pts).unwrap();
/// assert!(!report.rebuilt);
/// ```
#[derive(Debug, Clone)]
pub struct MobileBackbone {
    config: BackboneConfig,
    points: Vec<Point>,
    udg: Graph,
    backbone: Backbone,
    rebuilds: usize,
    updates: usize,
}

impl MobileBackbone {
    /// Builds the initial backbone for `points`.
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from the initial construction.
    pub fn new(points: Vec<Point>, config: BackboneConfig) -> Result<Self, BackboneError> {
        let udg = UnitDiskBuilder::new(config.radius).build(&points);
        let backbone = BackboneBuilder::new(config.clone()).build(&udg)?;
        Ok(MobileBackbone {
            config,
            points,
            udg,
            backbone,
            rebuilds: 0,
            updates: 0,
        })
    }

    /// The current backbone (valid for the most recent positions).
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// The current physical unit disk graph.
    pub fn udg(&self) -> &Graph {
        &self.udg
    }

    /// The current node positions.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of rebuilds performed so far.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// Number of position updates applied so far.
    pub fn update_count(&self) -> usize {
        self.updates
    }

    /// A node powers down. Dominatees leave silently (nothing routed
    /// through them); losing a backbone node forces a rebuild.
    ///
    /// The departed node keeps its index (with no links) so that
    /// identifiers remain stable for the application layer.
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from a rebuild.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds.
    pub fn remove_node(&mut self, v: usize) -> Result<MaintenanceReport, BackboneError> {
        assert!(v < self.points.len(), "node {v} out of bounds");
        self.updates += 1;
        let was_backbone = self.backbone.cds_graphs().is_backbone(v);
        // Park the node far outside the field: all its links drop.
        let far = 1e9 + v as f64;
        self.points[v] = Point::new(far, far);
        self.udg = UnitDiskBuilder::new(self.config.radius).build(&self.points);
        if !was_backbone {
            // Clip the departed dominatee out of the logical topology; no
            // other node's role or link can be affected (dominatees carry
            // no routing state), so the backbone is untouched.
            let broken_links: Vec<(usize, usize)> = self
                .backbone
                .ldel_icds_prime()
                .neighbors(v)
                .iter()
                .map(|&w| (v.min(w), v.max(w)))
                .collect();
            self.backbone.clip_dominatee(v);
            return Ok(MaintenanceReport {
                broken_links,
                rebuilt: false,
            });
        }
        self.backbone = BackboneBuilder::new(self.config.clone()).build(&self.udg)?;
        self.rebuilds += 1;
        Ok(MaintenanceReport {
            broken_links: Vec::new(),
            rebuilt: true,
        })
    }

    /// A node powers up at `position` and receives the next free index.
    ///
    /// If the newcomer lands within range of an existing dominator it
    /// joins as a plain dominatee — no rebuild, the localized fast path
    /// of the paper's maintenance story. Otherwise (it extends the
    /// coverage area, or bridges components) the backbone is rebuilt.
    ///
    /// Returns the new node's index and the maintenance report.
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from a rebuild.
    pub fn add_node(
        &mut self,
        position: Point,
    ) -> Result<(usize, MaintenanceReport), BackboneError> {
        self.updates += 1;
        self.points.push(position);
        let v = self.points.len() - 1;
        self.udg = UnitDiskBuilder::new(self.config.radius).build(&self.points);
        let adjacent_dominators: Vec<usize> = self
            .udg
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| self.backbone.cds_graphs().dominators.contains(&w))
            .collect();
        if adjacent_dominators.is_empty() {
            // The newcomer extends coverage (or bridges components): the
            // clustering itself changes, so rebuild.
            self.backbone = BackboneBuilder::new(self.config.clone()).build(&self.udg)?;
            self.rebuilds += 1;
            Ok((
                v,
                MaintenanceReport {
                    broken_links: Vec::new(),
                    rebuilt: true,
                },
            ))
        } else {
            // Fast path: join as a dominatee of the dominators in range —
            // one IamDominatee round in the field, a constant-time attach
            // here. The existing backbone is untouched.
            let attached = self
                .backbone
                .attach_dominatee(position, &adjacent_dominators);
            debug_assert_eq!(attached, v);
            Ok((
                v,
                MaintenanceReport {
                    broken_links: Vec::new(),
                    rebuilt: false,
                },
            ))
        }
    }

    /// Applies new positions. The backbone is rebuilt only when a
    /// logical link broke; otherwise the logical topology is kept
    /// verbatim (the paper's maintenance policy).
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from a rebuild.
    ///
    /// # Panics
    /// Panics if the number of positions changes (nodes joining/leaving
    /// is a different operation from movement).
    pub fn update_positions(
        &mut self,
        new_points: Vec<Point>,
    ) -> Result<MaintenanceReport, BackboneError> {
        assert_eq!(
            new_points.len(),
            self.points.len(),
            "update_positions handles movement, not membership changes"
        );
        self.updates += 1;
        let broken_links: Vec<(usize, usize)> = self
            .backbone
            .ldel_icds_prime()
            .edges()
            .filter(|&(u, v)| new_points[u].distance(new_points[v]) > self.config.radius)
            .collect();
        self.points = new_points;
        if broken_links.is_empty() {
            return Ok(MaintenanceReport {
                broken_links,
                rebuilt: false,
            });
        }
        self.udg = UnitDiskBuilder::new(self.config.radius).build(&self.points);
        self.backbone = BackboneBuilder::new(self.config.clone()).build(&self.udg)?;
        self.rebuilds += 1;
        Ok(MaintenanceReport {
            broken_links,
            rebuilt: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_graph::gen::connected_unit_disk;
    use geospan_graph::planarity::is_plane_embedding;

    fn start(seed: u64) -> MobileBackbone {
        let (pts, _udg, _s) = connected_unit_disk(60, 150.0, 50.0, seed);
        MobileBackbone::new(pts, BackboneConfig::new(50.0)).unwrap()
    }

    #[test]
    fn small_moves_keep_the_backbone() {
        let mut m = start(1);
        let before: Vec<_> = m.backbone().ldel_icds().edges().collect();
        // Nudge every node by far less than the link slack.
        let nudged: Vec<Point> = m
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| Point::new(p.x + 1e-6 * i as f64, p.y - 1e-6))
            .collect();
        let report = m.update_positions(nudged).unwrap();
        assert!(!report.rebuilt);
        assert!(report.broken_links.is_empty());
        let after: Vec<_> = m.backbone().ldel_icds().edges().collect();
        assert_eq!(before, after, "logical topology must be untouched");
        assert_eq!(m.rebuild_count(), 0);
        assert_eq!(m.update_count(), 1);
    }

    #[test]
    fn breaking_a_used_link_triggers_rebuild() {
        let mut m = start(2);
        // Teleport one backbone node far away: its links must break.
        let victim = m.backbone().backbone_nodes()[0];
        let mut pts = m.points().to_vec();
        pts[victim] = Point::new(pts[victim].x + 500.0, pts[victim].y);
        let report = m.update_positions(pts).unwrap();
        assert!(report.rebuilt);
        assert!(!report.broken_links.is_empty());
        assert!(report
            .broken_links
            .iter()
            .all(|&(u, v)| u == victim || v == victim));
        assert_eq!(m.rebuild_count(), 1);
        // The rebuilt backbone is valid for the new positions.
        assert!(is_plane_embedding(m.backbone().ldel_icds()));
        for (u, v) in m.backbone().ldel_icds_prime().edges() {
            assert!(m.points()[u].distance(m.points()[v]) <= 50.0);
        }
    }

    #[test]
    fn dominatee_leaves_without_rebuild() {
        let mut m = start(5);
        // Find a plain dominatee (not a connector).
        let v = (0..m.points().len())
            .find(|&v| m.backbone().roles()[v] == crate::Role::Dominatee)
            .expect("some dominatee exists");
        let backbone_edges_before: Vec<_> = m.backbone().ldel_icds().edges().collect();
        let report = m.remove_node(v).unwrap();
        assert!(!report.rebuilt);
        assert!(!report.broken_links.is_empty()); // lost its dominator links
        assert_eq!(m.rebuild_count(), 0);
        // The backbone core is untouched; v is isolated in the prime graph.
        let backbone_edges_after: Vec<_> = m.backbone().ldel_icds().edges().collect();
        assert_eq!(backbone_edges_before, backbone_edges_after);
        assert_eq!(m.backbone().ldel_icds_prime().degree(v), 0);
    }

    #[test]
    fn backbone_node_leaving_forces_rebuild() {
        let mut m = start(6);
        let v = m.backbone().backbone_nodes()[0];
        let report = m.remove_node(v).unwrap();
        assert!(report.rebuilt);
        assert_eq!(m.rebuild_count(), 1);
        assert!(is_plane_embedding(m.backbone().ldel_icds()));
    }

    #[test]
    fn covered_newcomer_joins_without_rebuild() {
        let mut m = start(7);
        // Drop the newcomer right next to an existing dominator.
        let d = m.backbone().cds_graphs().dominators[0];
        let pos = m.points()[d] + Point::new(0.5, 0.5);
        let before: Vec<_> = m.backbone().ldel_icds().edges().collect();
        let (v, report) = m.add_node(pos).unwrap();
        assert!(!report.rebuilt);
        assert_eq!(m.rebuild_count(), 0);
        assert_eq!(m.backbone().roles()[v], crate::Role::Dominatee);
        assert!(m.backbone().cds_graphs().dominators_of[v].contains(&d));
        assert!(m.backbone().ldel_icds_prime().has_edge(v, d));
        let after: Vec<_> = m.backbone().ldel_icds().edges().collect();
        assert_eq!(before, after, "backbone core must be untouched");
    }

    #[test]
    fn uncovered_newcomer_forces_rebuild() {
        let mut m = start(8);
        // Far corner outside everyone's radio range... but still forming
        // a connected UDG is not required for the maintenance API.
        let (_v, report) = m.add_node(Point::new(2000.0, 2000.0)).unwrap();
        assert!(report.rebuilt);
        assert!(m.rebuild_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "membership")]
    fn membership_change_rejected() {
        let mut m = start(3);
        let mut pts = m.points().to_vec();
        pts.pop();
        let _ = m.update_positions(pts);
    }

    #[test]
    fn drift_until_break_then_recover() {
        let mut m = start(4);
        let mut pts = m.points().to_vec();
        let mut saw_quiet_step = false;
        let mut saw_rebuild = false;
        for step in 0..60 {
            // Gentle drift for most steps; one teleport to force a break.
            if step == 30 {
                pts[0] = Point::new((pts[0].x + 300.0).min(149.0), 149.0);
            }
            for (i, p) in pts.iter_mut().enumerate() {
                let d = 0.02 * if (i + step) % 2 == 0 { 1.0 } else { -1.0 };
                p.x = (p.x + d).clamp(0.0, 150.0);
                p.y = (p.y - d).clamp(0.0, 150.0);
            }
            let report = m.update_positions(pts.clone()).unwrap();
            if report.rebuilt {
                saw_rebuild = true;
            } else {
                saw_quiet_step = true;
            }
        }
        assert!(saw_quiet_step, "expected some steps without maintenance");
        assert!(saw_rebuild, "expected the teleport to force a rebuild");
        assert_eq!(m.update_count(), 60);
        // Whatever happened, the invariants hold now.
        assert!(is_plane_embedding(m.backbone().ldel_icds()));
    }
}
