//! Backbone maintenance under node mobility.
//!
//! The paper's deployment claim (§I): "our algorithms do not need to
//! update the network topology when nodes are moving as long as no link
//! used in the final network topology is broken. … although the actual
//! physical deployment is no longer a planar graph when nodes are moving,
//! the logical network topology is still a planar graph."
//!
//! [`MobileBackbone`] packages that policy: it owns the current positions
//! and backbone, accepts position updates, and rebuilds only when a
//! *used* link exceeds the transmission radius (or a node leaves the
//! radio range of its entire old neighborhood, splitting the logical
//! structure).
//!
//! When maintenance *is* needed, a full reconstruction is the last
//! resort, not the first: a broken link or dead backbone node perturbs
//! the clustering only inside a bounded neighborhood (coverage is a
//! 1-hop property; connector elections reach 3 hops), so the repair
//! re-derives roles and re-runs elections only within 2 hops of the
//! damage, keeps every untouched election, and re-verifies the result.
//! Only when that localized repair fails the paper's guarantees does the
//! backbone get rebuilt from scratch.

use std::collections::BTreeSet;

use geospan_cds::{assemble, find_connectors_for_pairs, Clustering, ConnectorResult, Role};
use geospan_geometry::Point;
use geospan_graph::gen::UnitDiskBuilder;
use geospan_graph::Graph;

use crate::{verify, Backbone, BackboneBuilder, BackboneConfig, BackboneError};

/// How a maintenance operation restored the backbone invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintenanceAction {
    /// Nothing was damaged; the logical topology was kept verbatim (or
    /// extended by a constant-time attach).
    Kept,
    /// Damage was confined to a bounded region: roles and elections were
    /// re-derived only inside the listed 2-hop neighborhood.
    LocalRepair {
        /// The affected nodes (the 2-hop neighborhood of the damage),
        /// ascending — the only nodes whose state the repair touched.
        touched: Vec<usize>,
    },
    /// The backbone was reconstructed from scratch.
    FullRebuild {
        /// Why the localized path was not taken (or did not suffice).
        reason: String,
    },
}

/// What a position update did to the backbone.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenanceReport {
    /// Logical links whose endpoints moved out of range.
    pub broken_links: Vec<(usize, usize)>,
    /// Whether the backbone was **fully** rebuilt (localized repair does
    /// not count).
    pub rebuilt: bool,
    /// Which path restored the invariants.
    pub action: MaintenanceAction,
}

/// A backbone plus the mobility policy around it.
///
/// # Example
/// ```
/// use geospan_core::maintenance::MobileBackbone;
/// use geospan_core::BackboneConfig;
/// use geospan_graph::gen::uniform_points;
///
/// let pts = uniform_points(50, 150.0, 3);
/// let mut mobile = MobileBackbone::new(pts.clone(), BackboneConfig::new(60.0)).unwrap();
/// // A no-op update never rebuilds.
/// let report = mobile.update_positions(pts).unwrap();
/// assert!(!report.rebuilt);
/// ```
#[derive(Debug, Clone)]
pub struct MobileBackbone {
    config: BackboneConfig,
    points: Vec<Point>,
    udg: Graph,
    backbone: Backbone,
    rebuilds: usize,
    local_repairs: usize,
    updates: usize,
}

impl MobileBackbone {
    /// Builds the initial backbone for `points`.
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from the initial construction.
    pub fn new(points: Vec<Point>, config: BackboneConfig) -> Result<Self, BackboneError> {
        let udg = UnitDiskBuilder::new(config.radius).build(&points);
        let backbone = BackboneBuilder::new(config.clone()).build(&udg)?;
        Ok(MobileBackbone {
            config,
            points,
            udg,
            backbone,
            rebuilds: 0,
            local_repairs: 0,
            updates: 0,
        })
    }

    /// The current backbone (valid for the most recent positions).
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// The current physical unit disk graph.
    pub fn udg(&self) -> &Graph {
        &self.udg
    }

    /// The current node positions.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of **full** rebuilds performed so far.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// Number of localized repairs performed so far.
    pub fn local_repair_count(&self) -> usize {
        self.local_repairs
    }

    /// Number of position updates applied so far.
    pub fn update_count(&self) -> usize {
        self.updates
    }

    /// A node powers down. Dominatees leave silently (nothing routed
    /// through them); losing a backbone node forces a rebuild.
    ///
    /// The departed node keeps its index (with no links) so that
    /// identifiers remain stable for the application layer.
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from a rebuild.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds.
    pub fn remove_node(&mut self, v: usize) -> Result<MaintenanceReport, BackboneError> {
        assert!(v < self.points.len(), "node {v} out of bounds");
        self.updates += 1;
        let was_backbone = self.backbone.cds_graphs().is_backbone(v);
        let broken_links: Vec<(usize, usize)> = self
            .backbone
            .ldel_icds_prime()
            .neighbors(v)
            .iter()
            .map(|&w| (v.min(w), v.max(w)))
            .collect();
        // Park the node far outside the field: all its links drop.
        let far = 1e9 + v as f64;
        self.points[v] = Point::new(far, far);
        self.udg = UnitDiskBuilder::new(self.config.radius).build(&self.points);
        if !was_backbone {
            // Clip the departed dominatee out of the logical topology; no
            // other node's role or link can be affected (dominatees carry
            // no routing state), so the backbone is untouched.
            self.backbone.clip_dominatee(v);
            return Ok(MaintenanceReport {
                broken_links,
                rebuilt: false,
                action: MaintenanceAction::Kept,
            });
        }
        // A dead backbone node orphans exactly its logical neighbors:
        // try to heal around them before reconstructing everything.
        let seeds: BTreeSet<usize> = broken_links
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .filter(|&w| w != v)
            .collect();
        let action = self.repair_or_rebuild(&seeds, Some(v))?;
        Ok(MaintenanceReport {
            broken_links,
            rebuilt: matches!(action, MaintenanceAction::FullRebuild { .. }),
            action,
        })
    }

    /// A node powers up at `position` and receives the next free index.
    ///
    /// If the newcomer lands within range of an existing dominator it
    /// joins as a plain dominatee — no rebuild, the localized fast path
    /// of the paper's maintenance story. Otherwise (it extends the
    /// coverage area, or bridges components) the backbone is rebuilt.
    ///
    /// Returns the new node's index and the maintenance report.
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from a rebuild.
    pub fn add_node(
        &mut self,
        position: Point,
    ) -> Result<(usize, MaintenanceReport), BackboneError> {
        self.updates += 1;
        self.points.push(position);
        let v = self.points.len() - 1;
        self.udg = UnitDiskBuilder::new(self.config.radius).build(&self.points);
        let adjacent_dominators: Vec<usize> = self
            .udg
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| self.backbone.cds_graphs().dominators.contains(&w))
            .collect();
        if adjacent_dominators.is_empty() {
            // The newcomer extends coverage (or bridges components): the
            // clustering itself changes, so rebuild.
            self.backbone = BackboneBuilder::new(self.config.clone()).build(&self.udg)?;
            self.rebuilds += 1;
            Ok((
                v,
                MaintenanceReport {
                    broken_links: Vec::new(),
                    rebuilt: true,
                    action: MaintenanceAction::FullRebuild {
                        reason: format!("newcomer {v} is uncovered: the clustering changes"),
                    },
                },
            ))
        } else {
            // Fast path: join as a dominatee of the dominators in range —
            // one IamDominatee round in the field, a constant-time attach
            // here. The existing backbone is untouched.
            let attached = self
                .backbone
                .attach_dominatee(position, &adjacent_dominators);
            debug_assert_eq!(attached, v);
            Ok((
                v,
                MaintenanceReport {
                    broken_links: Vec::new(),
                    rebuilt: false,
                    action: MaintenanceAction::Kept,
                },
            ))
        }
    }

    /// Applies new positions. The backbone is rebuilt only when a
    /// logical link broke; otherwise the logical topology is kept
    /// verbatim (the paper's maintenance policy).
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from a rebuild.
    ///
    /// # Panics
    /// Panics if the number of positions changes (nodes joining/leaving
    /// is a different operation from movement).
    pub fn update_positions(
        &mut self,
        new_points: Vec<Point>,
    ) -> Result<MaintenanceReport, BackboneError> {
        assert_eq!(
            new_points.len(),
            self.points.len(),
            "update_positions handles movement, not membership changes"
        );
        self.updates += 1;
        let broken_links: Vec<(usize, usize)> = self
            .backbone
            .ldel_icds_prime()
            .edges()
            .filter(|&(u, v)| new_points[u].distance(new_points[v]) > self.config.radius)
            .collect();
        self.points = new_points;
        if broken_links.is_empty() {
            return Ok(MaintenanceReport {
                broken_links,
                rebuilt: false,
                action: MaintenanceAction::Kept,
            });
        }
        self.udg = UnitDiskBuilder::new(self.config.radius).build(&self.points);
        let seeds: BTreeSet<usize> = broken_links.iter().flat_map(|&(a, b)| [a, b]).collect();
        let action = self.repair_or_rebuild(&seeds, None)?;
        Ok(MaintenanceReport {
            broken_links,
            rebuilt: matches!(action, MaintenanceAction::FullRebuild { .. }),
            action,
        })
    }

    /// Attempts the localized repair around `seeds`; falls back to a full
    /// reconstruction when the repaired structure fails verification.
    fn repair_or_rebuild(
        &mut self,
        seeds: &BTreeSet<usize>,
        dead: Option<usize>,
    ) -> Result<MaintenanceAction, BackboneError> {
        match self.try_local_repair(seeds, dead) {
            Some((backbone, touched)) => {
                self.backbone = backbone;
                self.local_repairs += 1;
                Ok(MaintenanceAction::LocalRepair { touched })
            }
            None => {
                self.backbone = BackboneBuilder::new(self.config.clone()).build(&self.udg)?;
                self.rebuilds += 1;
                Ok(MaintenanceAction::FullRebuild {
                    reason: "localized repair failed verification".into(),
                })
            }
        }
    }

    /// The localized repair: re-derives roles and re-runs connector
    /// elections only inside the 2-hop neighborhood of `seeds`, keeping
    /// every election of the untouched region.
    ///
    /// Soundness rests on locality of the two sub-structures:
    /// * **coverage** is a 1-hop property, and every dominatee–dominator
    ///   link is a logical (prime-graph) link — so a node whose coverage
    ///   changed is an endpoint of a broken logical link, i.e. a seed;
    /// * **elections** for a dominator pair only involve nodes within one
    ///   hop of the pair, so elections whose outcome could have changed
    ///   touch a dominator within the 2-hop neighborhood.
    ///
    /// Promoting an uncovered node preserves global MIS independence
    /// (uncovered means: no adjacent dominator). The one global hazard —
    /// two old dominators drifting into adjacency — and any residual
    /// damage are caught by re-verifying the paper's guarantees; `None`
    /// means the caller must rebuild.
    fn try_local_repair(
        &self,
        seeds: &BTreeSet<usize>,
        dead: Option<usize>,
    ) -> Option<(Backbone, Vec<usize>)> {
        let udg = &self.udg;
        let n = udg.node_count();
        let old = self.backbone.cds_graphs();
        if old.roles.len() != n {
            return None; // membership changed since the last build
        }
        let is_dead = |w: usize| Some(w) == dead;

        // The affected region: seeds plus their 2-hop neighborhood.
        let mut affected: BTreeSet<usize> = seeds.clone();
        for _ in 0..2 {
            for u in affected.clone() {
                affected.extend(udg.neighbors(u).iter().copied());
            }
        }
        affected.retain(|&w| !is_dead(w));

        // Re-derive roles inside the region; everything else is kept.
        let mut is_dominator: Vec<bool> = (0..n)
            .map(|w| old.roles[w] == Role::Dominator && !is_dead(w))
            .collect();
        let mut dominators_of = old.dominators_of.clone();
        if let Some(d) = dead {
            dominators_of[d].clear();
        }
        for &w in &affected {
            if is_dominator[w] {
                continue;
            }
            dominators_of[w] = udg
                .neighbors(w)
                .iter()
                .copied()
                .filter(|&x| is_dominator[x])
                .collect();
            dominators_of[w].sort_unstable();
        }
        // Promote uncovered nodes (ascending, matching the lowest-id
        // election): no adjacent dominator means the promotion keeps the
        // dominator set independent.
        for &w in &affected {
            if is_dominator[w] || !dominators_of[w].is_empty() {
                continue;
            }
            is_dominator[w] = true;
            dominators_of[w].clear();
            for &x in udg.neighbors(w) {
                if !is_dominator[x] && affected.contains(&x) {
                    let doms = &mut dominators_of[x];
                    if let Err(i) = doms.binary_search(&w) {
                        doms.insert(i, w);
                    }
                }
            }
        }
        // Independence can only break where a node moved, i.e. inside
        // the region — anywhere it does, the clustering itself is stale
        // and the repair is off the table.
        for &d in &affected {
            if is_dominator[d] && udg.neighbors(d).iter().any(|&x| is_dominator[x]) {
                return None;
            }
        }

        let clustering = Clustering {
            dominators: (0..n).filter(|&w| is_dominator[w]).collect(),
            is_dominator,
            dominators_of,
        };

        // Re-run the elections for pairs touching an affected dominator;
        // keep every still-valid edge of the untouched elections.
        let affected_doms: geospan_graph::collections::VecSet = affected
            .iter()
            .copied()
            .filter(|&w| clustering.is_dominator[w])
            .collect();
        let fresh = find_connectors_for_pairs(udg, &clustering, &affected_doms);
        let mut edges: BTreeSet<(usize, usize)> = old
            .cds
            .edges()
            .filter(|&(a, b)| !is_dead(a) && !is_dead(b) && udg.has_edge(a, b))
            .collect();
        edges.extend(fresh.edges.iter().copied());
        let mut connectors: BTreeSet<usize> = old
            .connectors
            .iter()
            .copied()
            .chain(fresh.connectors.iter().copied())
            .filter(|&w| !is_dead(w) && !clustering.is_dominator[w])
            .collect();
        // A connector whose every incident election edge vanished has no
        // routing duty left; demote it back to a plain dominatee.
        connectors.retain(|&w| edges.iter().any(|&(a, b)| a == w || b == w));

        let result = ConnectorResult {
            connectors: connectors.into_iter().collect(),
            edges: edges.into_iter().collect(),
        };
        let repaired = Backbone::from_graphs(assemble(udg, &clustering, &result));
        if !verify(&repaired, udg, self.config.radius).all_ok() {
            return None;
        }
        Some((repaired, affected.into_iter().collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_graph::gen::connected_unit_disk;
    use geospan_graph::planarity::is_plane_embedding;

    fn start(seed: u64) -> MobileBackbone {
        let (pts, _udg, _s) = connected_unit_disk(60, 150.0, 50.0, seed);
        MobileBackbone::new(pts, BackboneConfig::new(50.0)).unwrap()
    }

    #[test]
    fn small_moves_keep_the_backbone() {
        let mut m = start(1);
        let before: Vec<_> = m.backbone().ldel_icds().edges().collect();
        // Nudge every node by far less than the link slack.
        let nudged: Vec<Point> = m
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| Point::new(p.x + 1e-6 * i as f64, p.y - 1e-6))
            .collect();
        let report = m.update_positions(nudged).unwrap();
        assert!(!report.rebuilt);
        assert!(report.broken_links.is_empty());
        let after: Vec<_> = m.backbone().ldel_icds().edges().collect();
        assert_eq!(before, after, "logical topology must be untouched");
        assert_eq!(m.rebuild_count(), 0);
        assert_eq!(m.update_count(), 1);
    }

    #[test]
    fn breaking_a_used_link_repairs_locally() {
        let mut m = start(2);
        // Teleport one backbone node far away: its links must break.
        let victim = m.backbone().backbone_nodes()[0];
        let mut pts = m.points().to_vec();
        pts[victim] = Point::new(pts[victim].x + 500.0, pts[victim].y);
        let report = m.update_positions(pts).unwrap();
        assert!(!report.broken_links.is_empty());
        assert!(report
            .broken_links
            .iter()
            .all(|&(u, v)| u == victim || v == victim));
        // Bounded damage heals in place — no full reconstruction.
        assert!(!report.rebuilt);
        assert!(matches!(
            report.action,
            MaintenanceAction::LocalRepair { .. }
        ));
        assert_eq!(m.rebuild_count(), 0);
        assert_eq!(m.local_repair_count(), 1);
        // The repaired backbone is valid for the new positions.
        assert!(crate::verify(m.backbone(), m.udg(), 50.0).all_ok());
        for (u, v) in m.backbone().ldel_icds_prime().edges() {
            assert!(m.points()[u].distance(m.points()[v]) <= 50.0);
        }
    }

    #[test]
    fn local_repair_touches_only_the_two_hop_neighborhood() {
        let mut m = start(2);
        let victim = m.backbone().backbone_nodes()[0];
        let mut pts = m.points().to_vec();
        pts[victim] = Point::new(pts[victim].x + 500.0, pts[victim].y);
        let report = m.update_positions(pts).unwrap();
        let MaintenanceAction::LocalRepair { touched } = &report.action else {
            panic!("expected a local repair, got {:?}", report.action);
        };
        // Recompute the allowed region: broken-link endpoints plus their
        // 2-hop neighborhood in the post-move UDG.
        let mut allowed: std::collections::BTreeSet<usize> = report
            .broken_links
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .collect();
        for _ in 0..2 {
            for u in allowed.clone() {
                allowed.extend(m.udg().neighbors(u).iter().copied());
            }
        }
        assert!(!touched.is_empty());
        for w in touched {
            assert!(allowed.contains(w), "repair touched distant node {w}");
        }
        // Roles outside the region are untouched by construction; spot
        // check that far nodes kept their role.
        assert!(crate::verify(m.backbone(), m.udg(), 50.0).all_ok());
    }

    #[test]
    fn dominatee_leaves_without_rebuild() {
        let mut m = start(5);
        // Find a plain dominatee (not a connector).
        let v = (0..m.points().len())
            .find(|&v| m.backbone().roles()[v] == crate::Role::Dominatee)
            .expect("some dominatee exists");
        let backbone_edges_before: Vec<_> = m.backbone().ldel_icds().edges().collect();
        let report = m.remove_node(v).unwrap();
        assert!(!report.rebuilt);
        assert!(!report.broken_links.is_empty()); // lost its dominator links
        assert_eq!(m.rebuild_count(), 0);
        // The backbone core is untouched; v is isolated in the prime graph.
        let backbone_edges_after: Vec<_> = m.backbone().ldel_icds().edges().collect();
        assert_eq!(backbone_edges_before, backbone_edges_after);
        assert_eq!(m.backbone().ldel_icds_prime().degree(v), 0);
    }

    #[test]
    fn backbone_node_leaving_heals_locally() {
        let mut m = start(6);
        let v = m.backbone().backbone_nodes()[0];
        let report = m.remove_node(v).unwrap();
        // Death of a backbone node is bounded damage: the 2-hop repair
        // re-elects around the hole instead of rebuilding everything.
        assert!(!report.rebuilt);
        assert!(matches!(
            report.action,
            MaintenanceAction::LocalRepair { .. }
        ));
        assert_eq!(m.rebuild_count(), 0);
        assert_eq!(m.local_repair_count(), 1);
        assert!(is_plane_embedding(m.backbone().ldel_icds()));
        assert!(crate::verify(m.backbone(), m.udg(), 50.0).all_ok());
        // The dead node is really gone from the routing structure.
        assert_eq!(m.backbone().ldel_icds_prime().degree(v), 0);
    }

    #[test]
    fn covered_newcomer_joins_without_rebuild() {
        let mut m = start(7);
        // Drop the newcomer right next to an existing dominator.
        let d = m.backbone().cds_graphs().dominators[0];
        let pos = m.points()[d] + Point::new(0.5, 0.5);
        let before: Vec<_> = m.backbone().ldel_icds().edges().collect();
        let (v, report) = m.add_node(pos).unwrap();
        assert!(!report.rebuilt);
        assert_eq!(m.rebuild_count(), 0);
        assert_eq!(m.backbone().roles()[v], crate::Role::Dominatee);
        assert!(m.backbone().cds_graphs().dominators_of[v].contains(&d));
        assert!(m.backbone().ldel_icds_prime().has_edge(v, d));
        let after: Vec<_> = m.backbone().ldel_icds().edges().collect();
        assert_eq!(before, after, "backbone core must be untouched");
    }

    #[test]
    fn uncovered_newcomer_forces_rebuild() {
        let mut m = start(8);
        // Far corner outside everyone's radio range... but still forming
        // a connected UDG is not required for the maintenance API.
        let (_v, report) = m.add_node(Point::new(2000.0, 2000.0)).unwrap();
        assert!(report.rebuilt);
        assert!(m.rebuild_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "membership")]
    fn membership_change_rejected() {
        let mut m = start(3);
        let mut pts = m.points().to_vec();
        pts.pop();
        let _ = m.update_positions(pts);
    }

    #[test]
    fn drift_until_break_then_recover() {
        let mut m = start(4);
        let mut pts = m.points().to_vec();
        let mut saw_quiet_step = false;
        let mut saw_rebuild = false;
        for step in 0..60 {
            // Gentle drift for most steps; one teleport to force a break.
            if step == 30 {
                pts[0] = Point::new((pts[0].x + 300.0).min(149.0), 149.0);
            }
            for (i, p) in pts.iter_mut().enumerate() {
                let d = 0.02 * if (i + step) % 2 == 0 { 1.0 } else { -1.0 };
                p.x = (p.x + d).clamp(0.0, 150.0);
                p.y = (p.y - d).clamp(0.0, 150.0);
            }
            let report = m.update_positions(pts.clone()).unwrap();
            if report.action == MaintenanceAction::Kept && report.broken_links.is_empty() {
                saw_quiet_step = true;
            } else {
                saw_rebuild = true;
            }
        }
        assert!(saw_quiet_step, "expected some steps without maintenance");
        assert!(saw_rebuild, "expected the teleport to force maintenance");
        assert_eq!(m.update_count(), 60);
        // Whatever happened, the invariants hold now.
        assert!(is_plane_embedding(m.backbone().ldel_icds()));
    }
}
