//! Backbone maintenance under node mobility and churn.
//!
//! The paper's deployment claim (§I): "our algorithms do not need to
//! update the network topology when nodes are moving as long as no link
//! used in the final network topology is broken. … although the actual
//! physical deployment is no longer a planar graph when nodes are moving,
//! the logical network topology is still a planar graph."
//!
//! [`MobileBackbone`] packages that policy: it owns the current positions
//! and backbone, accepts position updates and membership changes
//! (join/leave/rejoin), and rebuilds only when a *used* link exceeds the
//! transmission radius or the clustering itself changes shape.
//!
//! When maintenance *is* needed, a full reconstruction is the last
//! resort, not the first: damage perturbs the clustering only inside a
//! bounded neighborhood (coverage is a 1-hop property; connector
//! elections reach 3 hops), so the repair re-derives roles and re-runs
//! elections only around the damage and **splices** the results into the
//! kept structure:
//!
//! * elections whose pair touches the damaged scope are recomputed on
//!   the *old* state and subtracted edge-for-edge (they are stale);
//! * elections near a subtracted edge but outside the scope are re-run
//!   on the old state to restore any shared edge the subtraction took
//!   with it (the *rescue* pass);
//! * elections touching the scope are re-run on the *new* state and
//!   their edges added (the *fresh* pass).
//!
//! Because connector elections are per-pair and independent, the three
//! passes reproduce exactly what a from-scratch election would produce —
//! the property the churn test layer pins with [`rebuild_oracle`]
//! (incremental repair must equal a full rebuild that ranks surviving
//! dominators first). Only when the spliced structure fails the paper's
//! guarantees does the backbone get rebuilt from scratch.
//!
//! Departed nodes keep their index (identifiers stay stable for the
//! application layer) but are *parked*: moved to a reserved strip far
//! outside the field, spaced more than one radius apart so that no two
//! parked nodes ever form a ghost link, and demoted out of every role.
//!
//! [`rebuild_oracle`]: MobileBackbone::rebuild_oracle

use std::collections::BTreeSet;

use geospan_cds::{
    assemble, cluster, find_connectors, find_connectors_for_pairs,
    find_connectors_for_pairs_excluding, ClusterRank, Clustering, ConnectorResult, Role,
};
use geospan_geometry::Point;
use geospan_graph::collections::VecSet;
use geospan_graph::gen::UnitDiskBuilder;
use geospan_graph::Graph;

use crate::{verify, Backbone, BackboneBuilder, BackboneConfig, BackboneError};

/// How a maintenance operation restored the backbone invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintenanceAction {
    /// Nothing was damaged; the logical topology was kept verbatim (or
    /// extended by a constant-time attach).
    Kept,
    /// Damage was confined to a bounded region: roles and elections were
    /// re-derived only inside the listed neighborhood.
    LocalRepair {
        /// The affected nodes, ascending — the only nodes whose state
        /// the repair touched.
        touched: Vec<usize>,
    },
    /// The backbone was reconstructed from scratch.
    FullRebuild {
        /// Why the localized path was not taken (or did not suffice).
        reason: String,
    },
}

/// What a maintenance operation did to the backbone.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenanceReport {
    /// Logical links whose endpoints moved out of range.
    pub broken_links: Vec<(usize, usize)>,
    /// Whether the backbone was **fully** rebuilt (localized repair does
    /// not count).
    pub rebuilt: bool,
    /// Which path restored the invariants.
    pub action: MaintenanceAction,
}

/// Where a departed node is parked: a strip far outside any field, with
/// slots spaced more than one radius apart so no two parked nodes are
/// ever within range of each other (or of anything else).
fn park(radius: f64, v: usize) -> Point {
    Point::new(1e9 + v as f64 * (radius + 1.0), 1e9)
}

/// A backbone plus the mobility and churn policy around it.
///
/// # Example
/// ```
/// use geospan_core::maintenance::MobileBackbone;
/// use geospan_core::BackboneConfig;
/// use geospan_graph::gen::uniform_points;
///
/// let pts = uniform_points(50, 150.0, 3);
/// let mut mobile = MobileBackbone::new(pts.clone(), BackboneConfig::new(60.0)).unwrap();
/// // A no-op update never rebuilds.
/// let report = mobile.update_positions(pts).unwrap();
/// assert!(!report.rebuilt);
/// ```
#[derive(Debug, Clone)]
pub struct MobileBackbone {
    config: BackboneConfig,
    points: Vec<Point>,
    udg: Graph,
    backbone: Backbone,
    departed: BTreeSet<usize>,
    repair_enabled: bool,
    rebuilds: usize,
    local_repairs: usize,
    updates: usize,
}

impl MobileBackbone {
    /// Builds the initial backbone for `points`.
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from the initial construction.
    pub fn new(points: Vec<Point>, config: BackboneConfig) -> Result<Self, BackboneError> {
        Self::with_departed(points, config, BTreeSet::new())
    }

    /// Builds a backbone where the nodes in `departed` start out powered
    /// down (parked, no links, no role) — the churn driver uses this to
    /// start a run whose joiners have pre-assigned indices.
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from the initial construction.
    ///
    /// # Panics
    /// Panics if a departed index is out of bounds.
    pub fn with_departed(
        mut points: Vec<Point>,
        config: BackboneConfig,
        departed: BTreeSet<usize>,
    ) -> Result<Self, BackboneError> {
        for &d in &departed {
            assert!(d < points.len(), "departed node {d} out of bounds");
            points[d] = park(config.radius, d);
        }
        let udg = UnitDiskBuilder::new(config.radius).build(&points);
        let mut backbone = BackboneBuilder::new(config.clone()).build(&udg)?;
        backbone.demote_isolated(departed.iter().copied());
        Ok(MobileBackbone {
            config,
            points,
            udg,
            backbone,
            departed,
            repair_enabled: true,
            rebuilds: 0,
            local_repairs: 0,
            updates: 0,
        })
    }

    /// The current backbone (valid for the most recent positions).
    pub fn backbone(&self) -> &Backbone {
        &self.backbone
    }

    /// The current physical unit disk graph.
    pub fn udg(&self) -> &Graph {
        &self.udg
    }

    /// The current node positions (departed nodes sit at their parking
    /// slot).
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Indices of currently departed (powered-down) nodes.
    pub fn departed(&self) -> &BTreeSet<usize> {
        &self.departed
    }

    /// Enables or disables localized repair. When disabled, every
    /// maintenance operation that would have repaired in place performs
    /// a full rebuild instead — the baseline arm of the churn benchmark.
    pub fn set_local_repair(&mut self, enabled: bool) {
        self.repair_enabled = enabled;
    }

    /// Number of **full** rebuilds performed so far.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// Number of localized repairs performed so far.
    pub fn local_repair_count(&self) -> usize {
        self.local_repairs
    }

    /// Number of maintenance operations applied so far.
    pub fn update_count(&self) -> usize {
        self.updates
    }

    /// A node powers down. A plain dominatee leaves with at most a
    /// membership re-election around its dominators; losing a backbone
    /// node triggers the localized repair.
    ///
    /// The departed node keeps its index (with no links) so that
    /// identifiers remain stable for the application layer; it can come
    /// back later via [`rejoin_node`](Self::rejoin_node).
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from a rebuild.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds or already departed.
    pub fn remove_node(&mut self, v: usize) -> Result<MaintenanceReport, BackboneError> {
        assert!(v < self.points.len(), "node {v} out of bounds");
        assert!(!self.departed.contains(&v), "node {v} already departed");
        self.updates += 1;
        let was_backbone = self.backbone.cds_graphs().is_backbone(v);
        let broken_links: Vec<(usize, usize)> = self
            .backbone
            .ldel_icds_prime()
            .neighbors(v)
            .iter()
            .map(|&w| (v.min(w), v.max(w)))
            .collect();
        let old_udg = std::mem::replace(&mut self.udg, Graph::new(Vec::new()));
        self.points[v] = park(self.config.radius, v);
        self.departed.insert(v);
        self.udg = UnitDiskBuilder::new(self.config.radius).build(&self.points);
        if was_backbone {
            // A dead backbone node invalidates every election its old
            // neighborhood took part in: seed the repair with all its
            // old physical neighbors, not just the logical ones.
            let seeds: BTreeSet<usize> = old_udg
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&w| w != v)
                .collect();
            let action = self.repair_or_rebuild(&old_udg, &seeds, Some(v))?;
            return Ok(MaintenanceReport {
                broken_links,
                rebuilt: matches!(action, MaintenanceAction::FullRebuild { .. }),
                action,
            });
        }
        // A departing dominatee cannot change any role (coverage is a
        // 1-hop property and it covered nobody), but it may have been a
        // losing candidate in the elections around its dominators — so
        // those elections are re-checked, and only if all of them stand
        // is the node merely clipped out.
        let old_clustering = self.current_clustering();
        let mut new_clustering = old_clustering.clone();
        new_clustering.dominators_of[v].clear();
        let scope: VecSet = old_clustering.dominators_of[v].iter().copied().collect();
        let action = self.resync_membership(
            &old_udg,
            &old_clustering,
            &new_clustering,
            &scope,
            Some(v),
            v,
            |b| b.clip_dominatee(v),
        )?;
        Ok(MaintenanceReport {
            broken_links,
            rebuilt: matches!(action, MaintenanceAction::FullRebuild { .. }),
            action,
        })
    }

    /// A node powers up at `position` and receives the next free index.
    ///
    /// If the newcomer lands within range of an existing dominator it
    /// joins as a dominatee; the elections around those dominators are
    /// re-checked (the newcomer may be a better connector candidate) and
    /// spliced in if any changed. Otherwise (it extends the coverage
    /// area, or bridges components) the backbone is rebuilt.
    ///
    /// Returns the new node's index and the maintenance report.
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from a rebuild.
    pub fn add_node(
        &mut self,
        position: Point,
    ) -> Result<(usize, MaintenanceReport), BackboneError> {
        self.updates += 1;
        let old_udg = std::mem::replace(&mut self.udg, Graph::new(Vec::new()));
        self.points.push(position);
        let v = self.points.len() - 1;
        self.udg = UnitDiskBuilder::new(self.config.radius).build(&self.points);
        let mut doms: Vec<usize> = self
            .udg
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| self.backbone.cds_graphs().roles[w] == Role::Dominator)
            .collect();
        doms.sort_unstable();
        if doms.is_empty() {
            // The newcomer extends coverage (or bridges components): the
            // clustering itself changes, so rebuild.
            self.full_rebuild()?;
            return Ok((
                v,
                MaintenanceReport {
                    broken_links: Vec::new(),
                    rebuilt: true,
                    action: MaintenanceAction::FullRebuild {
                        reason: format!("newcomer {v} is uncovered: the clustering changes"),
                    },
                },
            ));
        }
        let old_clustering = self.current_clustering();
        let mut new_clustering = old_clustering.clone();
        new_clustering.is_dominator.push(false);
        new_clustering.dominators_of.push(doms.clone());
        let scope: VecSet = doms.iter().copied().collect();
        let action = self.resync_membership(
            &old_udg,
            &old_clustering,
            &new_clustering,
            &scope,
            None,
            v,
            |b| {
                let attached = b.attach_dominatee(position, &doms);
                debug_assert_eq!(attached, v);
            },
        )?;
        Ok((
            v,
            MaintenanceReport {
                broken_links: Vec::new(),
                rebuilt: matches!(action, MaintenanceAction::FullRebuild { .. }),
                action,
            },
        ))
    }

    /// A previously departed node powers back up at `position`, keeping
    /// its old index. Same policy as [`add_node`](Self::add_node):
    /// covered rejoiners splice in locally, uncovered ones force a
    /// rebuild.
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from a rebuild.
    ///
    /// # Panics
    /// Panics if `v` is not currently departed.
    pub fn rejoin_node(
        &mut self,
        v: usize,
        position: Point,
    ) -> Result<MaintenanceReport, BackboneError> {
        assert!(self.departed.contains(&v), "node {v} is not departed");
        self.updates += 1;
        let old_udg = std::mem::replace(&mut self.udg, Graph::new(Vec::new()));
        self.points[v] = position;
        self.departed.remove(&v);
        self.udg = UnitDiskBuilder::new(self.config.radius).build(&self.points);
        let mut doms: Vec<usize> = self
            .udg
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| self.backbone.cds_graphs().roles[w] == Role::Dominator)
            .collect();
        doms.sort_unstable();
        if doms.is_empty() {
            self.full_rebuild()?;
            return Ok(MaintenanceReport {
                broken_links: Vec::new(),
                rebuilt: true,
                action: MaintenanceAction::FullRebuild {
                    reason: format!("rejoined node {v} is uncovered: the clustering changes"),
                },
            });
        }
        let old_clustering = self.current_clustering();
        let mut new_clustering = old_clustering.clone();
        new_clustering.dominators_of[v] = doms.clone();
        let scope: VecSet = doms.iter().copied().collect();
        let action = self.resync_membership(
            &old_udg,
            &old_clustering,
            &new_clustering,
            &scope,
            None,
            v,
            |b| b.reattach_dominatee(v, &doms),
        )?;
        Ok(MaintenanceReport {
            broken_links: Vec::new(),
            rebuilt: matches!(action, MaintenanceAction::FullRebuild { .. }),
            action,
        })
    }

    /// Applies new positions. The backbone is repaired only when a
    /// logical link broke; otherwise the logical topology is kept
    /// verbatim (the paper's maintenance policy).
    ///
    /// # Errors
    /// Propagates [`BackboneError`] from a rebuild.
    ///
    /// # Panics
    /// Panics if the number of positions changes (nodes joining/leaving
    /// is a different operation from movement) or if a departed node's
    /// position changes.
    pub fn update_positions(
        &mut self,
        new_points: Vec<Point>,
    ) -> Result<MaintenanceReport, BackboneError> {
        assert_eq!(
            new_points.len(),
            self.points.len(),
            "update_positions handles movement, not membership changes"
        );
        for &d in &self.departed {
            assert_eq!(
                new_points[d], self.points[d],
                "departed node {d} cannot move"
            );
        }
        self.updates += 1;
        let broken_links: Vec<(usize, usize)> = self
            .backbone
            .ldel_icds_prime()
            .edges()
            .filter(|&(u, v)| new_points[u].distance(new_points[v]) > self.config.radius)
            .collect();
        if broken_links.is_empty() {
            // No used link broke: keep the logical topology — and the
            // UDG it was built from — verbatim.
            self.points = new_points;
            return Ok(MaintenanceReport {
                broken_links,
                rebuilt: false,
                action: MaintenanceAction::Kept,
            });
        }
        let old_udg = std::mem::replace(&mut self.udg, Graph::new(Vec::new()));
        self.points = new_points;
        self.udg = UnitDiskBuilder::new(self.config.radius).build(&self.points);
        // Seed the repair with every endpoint whose physical adjacency
        // changed since the backbone was built — the old UDG is exactly
        // the state the kept elections were computed on, so the edge
        // diff captures all accumulated drift, not just this step's.
        let mut seeds: BTreeSet<usize> = BTreeSet::new();
        for (u, v) in old_udg.edges() {
            if !self.udg.has_edge(u, v) {
                seeds.insert(u);
                seeds.insert(v);
            }
        }
        for (u, v) in self.udg.edges() {
            if !old_udg.has_edge(u, v) {
                seeds.insert(u);
                seeds.insert(v);
            }
        }
        let action = self.repair_or_rebuild(&old_udg, &seeds, None)?;
        Ok(MaintenanceReport {
            broken_links,
            rebuilt: matches!(action, MaintenanceAction::FullRebuild { .. }),
            action,
        })
    }

    /// What a from-scratch rebuild **must** produce for the current node
    /// set if the incremental path is honest: the clustering ranks the
    /// given `incumbents` (dominators that survived the last event)
    /// above everyone else, ties by lowest id — exactly the order in
    /// which the repair keeps incumbent dominators and then promotes
    /// uncovered nodes ascending. With no incumbents this degenerates to
    /// the plain lowest-id construction.
    ///
    /// Departed nodes are parked and isolated; the greedy clustering
    /// would crown each its own dominator, so they are purged from the
    /// result the same way the live path demotes them.
    ///
    /// This is the oracle the churn proptest layer compares every
    /// incrementally repaired backbone against, role-for-role and
    /// edge-for-edge.
    pub fn rebuild_oracle(&self, incumbents: &[usize]) -> Backbone {
        let n = self.udg.node_count();
        let mut weights = vec![0u64; n];
        for &v in incumbents {
            if !self.departed.contains(&v) {
                weights[v] = 1;
            }
        }
        let mut clustering = cluster(&self.udg, &ClusterRank::Weight(weights));
        if !self.departed.is_empty() {
            clustering.dominators.retain(|d| !self.departed.contains(d));
            for &d in &self.departed {
                clustering.is_dominator[d] = false;
                clustering.dominators_of[d].clear();
            }
        }
        let connectors = find_connectors(&self.udg, &clustering);
        Backbone::from_graphs(assemble(&self.udg, &clustering, &connectors))
    }

    /// The clustering implied by the current backbone's roles.
    fn current_clustering(&self) -> Clustering {
        let g = self.backbone.cds_graphs();
        Clustering {
            dominators: g.dominators.clone(),
            is_dominator: g.roles.iter().map(|r| *r == Role::Dominator).collect(),
            dominators_of: g.dominators_of.clone(),
        }
    }

    /// The current backbone's election edges as a set.
    fn cds_edges(&self) -> BTreeSet<(usize, usize)> {
        self.backbone.cds_graphs().cds.edges().collect()
    }

    /// Reconstructs from scratch on the current UDG, keeping departed
    /// nodes demoted.
    fn full_rebuild(&mut self) -> Result<(), BackboneError> {
        let mut b = BackboneBuilder::new(self.config.clone()).build(&self.udg)?;
        b.demote_isolated(self.departed.iter().copied());
        self.backbone = b;
        self.rebuilds += 1;
        Ok(())
    }

    /// The membership fast path shared by dominatee leave, covered join
    /// and covered rejoin: no role changes, but the elections around the
    /// node's dominators (`scope`) are re-checked. If they all stand the
    /// cheap constant-time structural edit is applied; if any changed,
    /// the splice result is assembled and verified.
    #[allow(clippy::too_many_arguments)]
    fn resync_membership(
        &mut self,
        old_udg: &Graph,
        old_clustering: &Clustering,
        new_clustering: &Clustering,
        scope: &VecSet,
        dead: Option<usize>,
        node: usize,
        cheap: impl FnOnce(&mut Backbone),
    ) -> Result<MaintenanceAction, BackboneError> {
        if !self.repair_enabled {
            self.full_rebuild()?;
            return Ok(MaintenanceAction::FullRebuild {
                reason: "local repair disabled".into(),
            });
        }
        let old_edges = self.cds_edges();
        let is_dead = |w: usize| Some(w) == dead;
        let result = splice_elections(
            &self.udg,
            old_udg,
            &old_edges,
            old_clustering,
            new_clustering,
            scope,
            scope,
            &is_dead,
        );
        let new_edges: BTreeSet<(usize, usize)> = result.edges.iter().copied().collect();
        if new_edges == old_edges && result.connectors == self.backbone.cds_graphs().connectors {
            cheap(&mut self.backbone);
            return Ok(MaintenanceAction::Kept);
        }
        let repaired = Backbone::from_graphs(assemble(&self.udg, new_clustering, &result));
        if verify(&repaired, &self.udg, self.config.radius).all_ok() {
            let mut touched: BTreeSet<usize> = old_edges
                .symmetric_difference(&new_edges)
                .flat_map(|&(a, b)| [a, b])
                .collect();
            touched.insert(node);
            self.backbone = repaired;
            self.local_repairs += 1;
            Ok(MaintenanceAction::LocalRepair {
                touched: touched.into_iter().collect(),
            })
        } else {
            self.full_rebuild()?;
            Ok(MaintenanceAction::FullRebuild {
                reason: "membership re-election failed verification".into(),
            })
        }
    }

    /// Attempts the localized repair around `seeds`; falls back to a full
    /// reconstruction when the repaired structure fails verification (or
    /// when localized repair is disabled).
    fn repair_or_rebuild(
        &mut self,
        old_udg: &Graph,
        seeds: &BTreeSet<usize>,
        dead: Option<usize>,
    ) -> Result<MaintenanceAction, BackboneError> {
        if self.repair_enabled {
            if let Some((backbone, touched)) = self.try_local_repair(old_udg, seeds, dead) {
                self.backbone = backbone;
                self.local_repairs += 1;
                return Ok(MaintenanceAction::LocalRepair { touched });
            }
        }
        self.full_rebuild()?;
        Ok(MaintenanceAction::FullRebuild {
            reason: if self.repair_enabled {
                "localized repair failed verification".into()
            } else {
                "local repair disabled".into()
            },
        })
    }

    /// The localized repair: re-derives roles inside the 2-hop
    /// neighborhood of `seeds` and splices the affected elections.
    ///
    /// Soundness rests on locality of the two sub-structures:
    /// * **coverage** is a 1-hop property, so a node whose coverage
    ///   changed is adjacent to a changed link — its endpoints are
    ///   seeds;
    /// * **elections** for a dominator pair only involve nodes within
    ///   one hop of the pair, so elections whose outcome could have
    ///   changed touch a dominator within the 2-hop neighborhood.
    ///
    /// Promoting an uncovered node preserves global MIS independence
    /// (uncovered means: no adjacent dominator). The one global hazard —
    /// two old dominators drifting into adjacency — and any residual
    /// damage are caught by re-verifying the paper's guarantees; `None`
    /// means the caller must rebuild.
    fn try_local_repair(
        &self,
        old_udg: &Graph,
        seeds: &BTreeSet<usize>,
        dead: Option<usize>,
    ) -> Option<(Backbone, Vec<usize>)> {
        let udg = &self.udg;
        let n = udg.node_count();
        let old = self.backbone.cds_graphs();
        if old.roles.len() != n {
            return None; // membership changed since the last build
        }
        let is_dead = |w: usize| Some(w) == dead;

        // The affected region: seeds plus their 2-hop neighborhood.
        let mut affected: BTreeSet<usize> = seeds.clone();
        for _ in 0..2 {
            for u in affected.clone() {
                affected.extend(udg.neighbors(u).iter().copied());
            }
        }
        affected.retain(|&w| !is_dead(w) && !self.departed.contains(&w));

        // Re-derive roles inside the region; everything else is kept.
        let mut is_dominator: Vec<bool> = (0..n)
            .map(|w| old.roles[w] == Role::Dominator && !is_dead(w))
            .collect();
        let mut dominators_of = old.dominators_of.clone();
        if let Some(d) = dead {
            dominators_of[d].clear();
        }
        for &w in &affected {
            if is_dominator[w] {
                continue;
            }
            dominators_of[w] = udg
                .neighbors(w)
                .iter()
                .copied()
                .filter(|&x| is_dominator[x])
                .collect();
            dominators_of[w].sort_unstable();
        }
        // Promote uncovered nodes (ascending, matching the lowest-id
        // election): no adjacent dominator means the promotion keeps the
        // dominator set independent.
        for &w in &affected {
            if is_dominator[w] || !dominators_of[w].is_empty() {
                continue;
            }
            is_dominator[w] = true;
            dominators_of[w].clear();
            for &x in udg.neighbors(w) {
                if !is_dominator[x] && affected.contains(&x) {
                    let doms = &mut dominators_of[x];
                    if let Err(i) = doms.binary_search(&w) {
                        doms.insert(i, w);
                    }
                }
            }
        }
        // Independence can only break where a node moved, i.e. inside
        // the region — anywhere it does, the clustering itself is stale
        // and the repair is off the table.
        for &d in &affected {
            if is_dominator[d] && udg.neighbors(d).iter().any(|&x| is_dominator[x]) {
                return None;
            }
        }

        let old_clustering = self.current_clustering();
        let clustering = Clustering {
            dominators: (0..n).filter(|&w| is_dominator[w]).collect(),
            is_dominator,
            dominators_of,
        };

        // Stale elections: every pair touching an old dominator in the
        // region (including the dead one — its elections died with it).
        let mut old_scope: VecSet = affected
            .iter()
            .copied()
            .filter(|&w| old_clustering.is_dominator[w])
            .collect();
        if let Some(d) = dead {
            if old_clustering.is_dominator[d] {
                old_scope.insert(d);
            }
        }
        let new_scope: VecSet = affected
            .iter()
            .copied()
            .filter(|&w| clustering.is_dominator[w])
            .collect();
        let old_edges = self.cds_edges();
        let result = splice_elections(
            udg,
            old_udg,
            &old_edges,
            &old_clustering,
            &clustering,
            &old_scope,
            &new_scope,
            &is_dead,
        );
        let repaired = Backbone::from_graphs(assemble(udg, &clustering, &result));
        if !verify(&repaired, udg, self.config.radius).all_ok() {
            return None;
        }
        Some((repaired, affected.into_iter().collect()))
    }
}

/// Splices re-run elections into a kept edge set.
///
/// Elections are per-pair and independent, and pairs partition into
/// those touching a scope and those not (`find_connectors_for_pairs` ∪
/// `find_connectors_for_pairs_excluding` = all pairs — tested in the
/// cds crate). The splice exploits that:
///
/// 1. **subtract** — re-run, on the *old* state, every election whose
///    pair touches `old_scope`; their edges are stale, remove them.
/// 2. **rescue** — an edge can be shared between a stale election and a
///    valid out-of-scope one; re-run, on the old state, the elections of
///    dominators within one old hop of a subtracted edge (minus the
///    scope) and restore their edges.
/// 3. **filter** — drop edges with dead endpoints, edges no longer in
///    the new UDG, and dominator–dominator edges (a kept edge whose
///    endpoint got promoted belongs to a fresh election now).
/// 4. **fresh** — re-run, on the *new* state, every election touching
///    `new_scope` and add its edges.
///
/// The final connectors are exactly the non-dominator endpoints of the
/// final edges (every election winner contributes an incident edge).
#[allow(clippy::too_many_arguments)]
fn splice_elections(
    new_udg: &Graph,
    old_udg: &Graph,
    old_edges: &BTreeSet<(usize, usize)>,
    old_clustering: &Clustering,
    new_clustering: &Clustering,
    old_scope: &VecSet,
    new_scope: &VecSet,
    is_dead: &dyn Fn(usize) -> bool,
) -> ConnectorResult {
    let stale = find_connectors_for_pairs(old_udg, old_clustering, old_scope);

    let mut rescue_scope = VecSet::new();
    for &(a, b) in &stale.edges {
        for e in [a, b] {
            if old_clustering.is_dominator[e] && !old_scope.contains(e) {
                rescue_scope.insert(e);
            }
            for &d in old_udg.neighbors(e) {
                if old_clustering.is_dominator[d] && !old_scope.contains(d) {
                    rescue_scope.insert(d);
                }
            }
        }
    }
    let rescue =
        find_connectors_for_pairs_excluding(old_udg, old_clustering, &rescue_scope, old_scope);

    let fresh = find_connectors_for_pairs(new_udg, new_clustering, new_scope);

    let mut edges = old_edges.clone();
    for e in &stale.edges {
        edges.remove(e);
    }
    edges.extend(rescue.edges.iter().copied());
    edges.retain(|&(a, b)| {
        if is_dead(a) || is_dead(b) || !new_udg.has_edge(a, b) {
            return false;
        }
        !(new_clustering.is_dominator[a] && new_clustering.is_dominator[b])
    });
    edges.extend(fresh.edges.iter().copied());

    let connectors: BTreeSet<usize> = edges
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .filter(|&e| !new_clustering.is_dominator[e])
        .collect();
    ConnectorResult {
        connectors: connectors.into_iter().collect(),
        edges: edges.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geospan_graph::gen::connected_unit_disk;
    use geospan_graph::planarity::is_plane_embedding;

    fn start(seed: u64) -> MobileBackbone {
        let (pts, _udg, _s) = connected_unit_disk(60, 150.0, 50.0, seed);
        MobileBackbone::new(pts, BackboneConfig::new(50.0)).unwrap()
    }

    /// Roles + election edges of two backbones must coincide.
    fn assert_same_structure(a: &Backbone, b: &Backbone, what: &str) {
        assert_eq!(a.cds_graphs().roles, b.cds_graphs().roles, "{what}: roles");
        let ea: Vec<_> = a.cds_graphs().cds.edges().collect();
        let eb: Vec<_> = b.cds_graphs().cds.edges().collect();
        assert_eq!(ea, eb, "{what}: election edges");
    }

    #[test]
    fn small_moves_keep_the_backbone() {
        let mut m = start(1);
        let before: Vec<_> = m.backbone().ldel_icds().edges().collect();
        // Nudge every node by far less than the link slack.
        let nudged: Vec<Point> = m
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| Point::new(p.x + 1e-6 * i as f64, p.y - 1e-6))
            .collect();
        let report = m.update_positions(nudged).unwrap();
        assert!(!report.rebuilt);
        assert!(report.broken_links.is_empty());
        let after: Vec<_> = m.backbone().ldel_icds().edges().collect();
        assert_eq!(before, after, "logical topology must be untouched");
        assert_eq!(m.rebuild_count(), 0);
        assert_eq!(m.update_count(), 1);
    }

    #[test]
    fn breaking_a_used_link_repairs_locally() {
        let mut m = start(2);
        // Teleport one backbone node far away: its links must break.
        let victim = m.backbone().backbone_nodes()[0];
        let mut pts = m.points().to_vec();
        pts[victim] = Point::new(pts[victim].x + 500.0, pts[victim].y);
        let report = m.update_positions(pts).unwrap();
        assert!(!report.broken_links.is_empty());
        assert!(report
            .broken_links
            .iter()
            .all(|&(u, v)| u == victim || v == victim));
        // Bounded damage heals in place — no full reconstruction.
        assert!(!report.rebuilt);
        assert!(matches!(
            report.action,
            MaintenanceAction::LocalRepair { .. }
        ));
        assert_eq!(m.rebuild_count(), 0);
        assert_eq!(m.local_repair_count(), 1);
        // The repaired backbone is valid for the new positions.
        assert!(crate::verify(m.backbone(), m.udg(), 50.0).all_ok());
        for (u, v) in m.backbone().ldel_icds_prime().edges() {
            assert!(m.points()[u].distance(m.points()[v]) <= 50.0);
        }
    }

    #[test]
    fn local_repair_touches_only_the_two_hop_neighborhood() {
        let mut m = start(2);
        let victim = m.backbone().backbone_nodes()[0];
        let old_udg = m.udg().clone();
        let mut pts = m.points().to_vec();
        pts[victim] = Point::new(pts[victim].x + 500.0, pts[victim].y);
        let report = m.update_positions(pts).unwrap();
        let MaintenanceAction::LocalRepair { touched } = &report.action else {
            panic!("expected a local repair, got {:?}", report.action);
        };
        // Recompute the allowed region: endpoints of the UDG edge diff
        // plus their 2-hop neighborhood in the post-move UDG.
        let mut allowed: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for (u, v) in old_udg.edges() {
            if !m.udg().has_edge(u, v) {
                allowed.extend([u, v]);
            }
        }
        for (u, v) in m.udg().edges() {
            if !old_udg.has_edge(u, v) {
                allowed.extend([u, v]);
            }
        }
        for _ in 0..2 {
            for u in allowed.clone() {
                allowed.extend(m.udg().neighbors(u).iter().copied());
            }
        }
        assert!(!touched.is_empty());
        for w in touched {
            assert!(allowed.contains(w), "repair touched distant node {w}");
        }
        // Roles outside the region are untouched by construction; spot
        // check that far nodes kept their role.
        assert!(crate::verify(m.backbone(), m.udg(), 50.0).all_ok());
    }

    #[test]
    fn repair_after_move_matches_rebuild_oracle() {
        let mut m = start(2);
        let incumbents = m.backbone().cds_graphs().dominators.clone();
        let victim = m.backbone().backbone_nodes()[0];
        let mut pts = m.points().to_vec();
        pts[victim] = Point::new(pts[victim].x + 500.0, pts[victim].y);
        let report = m.update_positions(pts).unwrap();
        assert!(matches!(
            report.action,
            MaintenanceAction::LocalRepair { .. }
        ));
        let oracle = m.rebuild_oracle(&incumbents);
        assert_same_structure(m.backbone(), &oracle, "post-teleport repair");
    }

    #[test]
    fn oracle_without_incumbents_is_the_plain_rebuild() {
        let m = start(3);
        let oracle = m.rebuild_oracle(&[]);
        assert_same_structure(m.backbone(), &oracle, "fresh build");
    }

    #[test]
    fn dominatee_leaves_without_rebuild() {
        let mut m = start(5);
        // Find a plain dominatee (not a connector).
        let v = (0..m.points().len())
            .find(|&v| m.backbone().roles()[v] == crate::Role::Dominatee)
            .expect("some dominatee exists");
        let backbone_edges_before: Vec<_> = m.backbone().ldel_icds().edges().collect();
        let report = m.remove_node(v).unwrap();
        assert!(!report.rebuilt);
        assert!(!report.broken_links.is_empty()); // lost its dominator links
        assert_eq!(m.rebuild_count(), 0);
        // The backbone core is untouched; v is isolated in the prime graph.
        let backbone_edges_after: Vec<_> = m.backbone().ldel_icds().edges().collect();
        assert_eq!(backbone_edges_before, backbone_edges_after);
        assert_eq!(m.backbone().ldel_icds_prime().degree(v), 0);
        assert!(m.departed().contains(&v));
    }

    #[test]
    fn backbone_node_leaving_heals_locally() {
        let mut m = start(6);
        let v = m.backbone().backbone_nodes()[0];
        let report = m.remove_node(v).unwrap();
        // Death of a backbone node is bounded damage: the 2-hop repair
        // re-elects around the hole instead of rebuilding everything.
        assert!(!report.rebuilt);
        assert!(matches!(
            report.action,
            MaintenanceAction::LocalRepair { .. }
        ));
        assert_eq!(m.rebuild_count(), 0);
        assert_eq!(m.local_repair_count(), 1);
        assert!(is_plane_embedding(m.backbone().ldel_icds()));
        assert!(crate::verify(m.backbone(), m.udg(), 50.0).all_ok());
        // The dead node is really gone from the routing structure.
        assert_eq!(m.backbone().ldel_icds_prime().degree(v), 0);
    }

    #[test]
    fn covered_newcomer_joins_without_rebuild() {
        let mut m = start(7);
        // Drop the newcomer right next to an existing dominator.
        let d = m.backbone().cds_graphs().dominators[0];
        let pos = m.points()[d] + Point::new(0.5, 0.5);
        let before: Vec<_> = m.backbone().ldel_icds().edges().collect();
        let (v, report) = m.add_node(pos).unwrap();
        assert!(!report.rebuilt);
        assert_eq!(m.rebuild_count(), 0);
        assert_eq!(m.backbone().roles()[v], crate::Role::Dominatee);
        assert!(m.backbone().cds_graphs().dominators_of[v].contains(&d));
        assert!(m.backbone().ldel_icds_prime().has_edge(v, d));
        let after: Vec<_> = m.backbone().ldel_icds().edges().collect();
        assert_eq!(before, after, "backbone core must be untouched");
    }

    #[test]
    fn uncovered_newcomer_forces_rebuild() {
        let mut m = start(8);
        // Far corner outside everyone's radio range... but still forming
        // a connected UDG is not required for the maintenance API.
        let (_v, report) = m.add_node(Point::new(2000.0, 2000.0)).unwrap();
        assert!(report.rebuilt);
        assert!(m.rebuild_count() >= 1);
    }

    #[test]
    fn rejoin_reverses_a_dominatee_leave() {
        let mut m = start(5);
        let v = (0..m.points().len())
            .find(|&v| m.backbone().roles()[v] == crate::Role::Dominatee)
            .expect("some dominatee exists");
        let pos = m.points()[v];
        let roles_before = m.backbone().roles().to_vec();
        let prime_before: Vec<_> = m.backbone().ldel_icds_prime().edges().collect();
        m.remove_node(v).unwrap();
        let report = m.rejoin_node(v, pos).unwrap();
        assert!(!report.rebuilt);
        assert!(m.departed().is_empty());
        assert_eq!(m.backbone().roles(), &roles_before[..]);
        let prime_after: Vec<_> = m.backbone().ldel_icds_prime().edges().collect();
        assert_eq!(prime_before, prime_after, "leave + rejoin must round-trip");
        assert!(crate::verify(m.backbone(), m.udg(), 50.0).all_ok());
    }

    #[test]
    #[should_panic(expected = "not departed")]
    fn rejoining_a_live_node_is_rejected() {
        let mut m = start(5);
        let p = m.points()[0];
        let _ = m.rejoin_node(0, p);
    }

    #[test]
    #[should_panic(expected = "already departed")]
    fn removing_a_departed_node_is_rejected() {
        let mut m = start(5);
        let v = (0..m.points().len())
            .find(|&v| m.backbone().roles()[v] == crate::Role::Dominatee)
            .expect("some dominatee exists");
        m.remove_node(v).unwrap();
        let _ = m.remove_node(v);
    }

    /// Regression: a full rebuild after departures used to resurrect
    /// parked nodes as isolated one-node clusters (each its own
    /// dominator), leaving dangling rank entries in the clustering. The
    /// parked strip keeps them out of radio range and the rebuild
    /// demotes them explicitly.
    #[test]
    fn departed_nodes_never_resurface_after_a_rebuild() {
        let mut m = start(9);
        let mut gone = Vec::new();
        for _ in 0..3 {
            let v = (0..m.points().len())
                .find(|&v| {
                    m.backbone().roles()[v] == crate::Role::Dominatee && !m.departed().contains(&v)
                })
                .expect("some dominatee exists");
            m.remove_node(v).unwrap();
            gone.push(v);
        }
        // Force a full rebuild with the departures still in effect.
        let (_v, report) = m.add_node(Point::new(2000.0, 2000.0)).unwrap();
        assert!(report.rebuilt);
        for &v in &gone {
            assert_eq!(
                m.backbone().roles()[v],
                crate::Role::Dominatee,
                "departed node {v} resurfaced with a role"
            );
            assert!(!m.backbone().cds_graphs().dominators.contains(&v));
            assert!(!m.backbone().cds_graphs().connectors.contains(&v));
            assert_eq!(m.backbone().ldel_icds_prime().degree(v), 0);
            assert_eq!(m.udg().degree(v), 0, "parked node {v} has a ghost link");
        }
        // Parking slots are spaced: no two departed nodes in range.
        for &a in &gone {
            for &b in &gone {
                if a != b {
                    assert!(m.points()[a].distance(m.points()[b]) > 50.0);
                }
            }
        }
    }

    #[test]
    fn disabled_repair_always_rebuilds() {
        let mut m = start(6);
        m.set_local_repair(false);
        let v = m.backbone().backbone_nodes()[0];
        let report = m.remove_node(v).unwrap();
        assert!(report.rebuilt);
        assert_eq!(
            report.action,
            MaintenanceAction::FullRebuild {
                reason: "local repair disabled".into()
            }
        );
        assert_eq!(m.local_repair_count(), 0);
        assert_eq!(m.rebuild_count(), 1);
        assert!(crate::verify(m.backbone(), m.udg(), 50.0).all_ok());
    }

    #[test]
    #[should_panic(expected = "membership")]
    fn membership_change_rejected() {
        let mut m = start(3);
        let mut pts = m.points().to_vec();
        pts.pop();
        let _ = m.update_positions(pts);
    }

    #[test]
    fn drift_until_break_then_recover() {
        let mut m = start(4);
        let mut pts = m.points().to_vec();
        let mut saw_quiet_step = false;
        let mut saw_rebuild = false;
        for step in 0..60 {
            // Gentle drift for most steps; one teleport to force a break.
            if step == 30 {
                pts[0] = Point::new((pts[0].x + 300.0).min(149.0), 149.0);
            }
            for (i, p) in pts.iter_mut().enumerate() {
                let d = 0.02 * if (i + step) % 2 == 0 { 1.0 } else { -1.0 };
                p.x = (p.x + d).clamp(0.0, 150.0);
                p.y = (p.y - d).clamp(0.0, 150.0);
            }
            let report = m.update_positions(pts.clone()).unwrap();
            if report.action == MaintenanceAction::Kept && report.broken_links.is_empty() {
                saw_quiet_step = true;
            } else {
                saw_rebuild = true;
            }
        }
        assert!(saw_quiet_step, "expected some steps without maintenance");
        assert!(saw_rebuild, "expected the teleport to force maintenance");
        assert_eq!(m.update_count(), 60);
        // Whatever happened, the invariants hold now.
        assert!(is_plane_embedding(m.backbone().ldel_icds()));
    }
}
