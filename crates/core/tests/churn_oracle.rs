//! The churn correctness spine: after every membership event, the
//! incrementally repaired backbone must equal a from-scratch rebuild on
//! the same node set, role-for-role and edge-for-edge.
//!
//! The oracle is [`MobileBackbone::rebuild_oracle`]: a full
//! reconstruction whose clustering ranks the dominators that survived
//! the event above everyone else (ties by lowest id) — exactly the
//! incumbency the incremental path preserves. After a full rebuild the
//! incremental state *is* the plain lowest-id construction, so those
//! events compare against `rebuild_oracle(&[])`.
//!
//! Traces are membership-only (joins and leaves, no moves): under the
//! paper's keep-while-unbroken policy a move may intentionally leave
//! elections stale, so exact oracle equality is only promised for
//! membership events.
//!
//! The smoke proptest below runs a handful of traces; the `#[ignore]`d
//! sweeps run 256 seeds per network size and are exercised in release
//! mode by the churn-smoke CI job.

use std::collections::BTreeSet;

use geospan_core::maintenance::{MaintenanceAction, MobileBackbone};
use geospan_core::{verify, Backbone, BackboneConfig};
use geospan_graph::gen::connected_unit_disk;
use geospan_graph::planarity::is_plane_embedding;
use geospan_sim::{ChurnEvent, ChurnMix, ChurnPlan};
use proptest::prelude::*;

/// Roles, election edges, and connector sets of two backbones coincide.
fn assert_same_structure(incremental: &Backbone, oracle: &Backbone, what: &str) {
    let a = incremental.cds_graphs();
    let b = oracle.cds_graphs();
    assert_eq!(a.roles, b.roles, "{what}: roles diverge from the oracle");
    assert_eq!(
        a.dominators, b.dominators,
        "{what}: dominators diverge from the oracle"
    );
    assert_eq!(
        a.connectors, b.connectors,
        "{what}: connectors diverge from the oracle"
    );
    let ea: Vec<_> = a.cds.edges().collect();
    let eb: Vec<_> = b.cds.edges().collect();
    assert_eq!(ea, eb, "{what}: election edges diverge from the oracle");
}

/// Replays a seeded membership-only churn trace against a
/// [`MobileBackbone`], checking oracle equality after **every** event.
fn check_trace(seed: u64, n: usize, events: usize) {
    let radius = 50.0;
    let side = if n <= 50 { 150.0 } else { 300.0 };
    let (pts, _udg, _s) = connected_unit_disk(n, side, radius, seed);
    let plan = ChurnPlan::generate(
        seed ^ 0x00c0_ffee,
        n,
        side,
        events,
        events as u64 * 2,
        ChurnMix::membership_only(),
    );
    // The universe holds every node that will ever exist; joiners start
    // out departed (parked) and power up at their scheduled position.
    let mut universe_pts = pts;
    for v in n..plan.universe() {
        universe_pts.push(plan.join_position(v).expect("joiners carry a position"));
    }
    let departed: BTreeSet<usize> = (n..plan.universe()).collect();
    let mut m = MobileBackbone::with_departed(universe_pts, BackboneConfig::new(radius), departed)
        .expect("initial build");
    assert_same_structure(m.backbone(), &m.rebuild_oracle(&[]), "initial build");

    for tick in plan.ticks() {
        for timed in plan.events_at(tick) {
            let incumbents = m.backbone().cds_graphs().dominators.clone();
            let (what, report) = match timed.event {
                ChurnEvent::Leave { node } => (
                    format!("seed {seed} n {n} tick {tick}: leave {node}"),
                    m.remove_node(node).expect("leave"),
                ),
                ChurnEvent::Join { node, position } => (
                    format!("seed {seed} n {n} tick {tick}: join {node}"),
                    m.rejoin_node(node, position).expect("join"),
                ),
                ChurnEvent::Move { .. } => {
                    unreachable!("membership-only traces schedule no moves")
                }
            };
            // After a full rebuild the state is the plain lowest-id
            // construction; after a kept/local event the surviving
            // dominators are incumbents the oracle must rank first.
            let oracle = match report.action {
                MaintenanceAction::FullRebuild { .. } => m.rebuild_oracle(&[]),
                _ => m.rebuild_oracle(&incumbents),
            };
            assert_same_structure(m.backbone(), &oracle, &what);
        }
    }
    // End-of-trace: the paper's guarantees hold on the final structure.
    assert!(
        is_plane_embedding(m.backbone().ldel_icds()),
        "seed {seed}: final backbone is not a plane embedding"
    );
    assert!(
        verify(m.backbone(), m.udg(), radius).all_ok(),
        "seed {seed}: final backbone fails verification"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A quick randomized pass that always runs with the suite.
    #[test]
    fn incremental_repair_matches_rebuild_oracle(seed in 0u64..1 << 40) {
        check_trace(seed, 50, 60);
    }
}

/// 256-seed sweep at n = 50, 200 events per trace (churn-smoke CI job,
/// release mode).
#[test]
#[ignore = "long sweep; run with --release -- --ignored"]
fn oracle_sweep_small() {
    for seed in 0..256 {
        check_trace(seed, 50, 200);
    }
}

/// 256-seed sweep at n = 200, 200 events per trace (churn-smoke CI job,
/// release mode).
#[test]
#[ignore = "long sweep; run with --release -- --ignored"]
fn oracle_sweep_large() {
    for seed in 0..256 {
        check_trace(seed + 1_000_000, 200, 200);
    }
}
