/root/repo/target/debug/deps/geospan_cds-d4d5f97b2483f7b8.d: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs

/root/repo/target/debug/deps/libgeospan_cds-d4d5f97b2483f7b8.rlib: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs

/root/repo/target/debug/deps/libgeospan_cds-d4d5f97b2483f7b8.rmeta: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs

crates/cds/src/lib.rs:
crates/cds/src/cluster.rs:
crates/cds/src/connector.rs:
crates/cds/src/dhop.rs:
crates/cds/src/protocol.rs:
crates/cds/src/rank.rs:
