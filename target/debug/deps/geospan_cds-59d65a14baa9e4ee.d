/root/repo/target/debug/deps/geospan_cds-59d65a14baa9e4ee.d: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs

/root/repo/target/debug/deps/geospan_cds-59d65a14baa9e4ee: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs

crates/cds/src/lib.rs:
crates/cds/src/cluster.rs:
crates/cds/src/connector.rs:
crates/cds/src/dhop.rs:
crates/cds/src/protocol.rs:
crates/cds/src/rank.rs:
