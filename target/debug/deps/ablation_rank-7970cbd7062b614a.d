/root/repo/target/debug/deps/ablation_rank-7970cbd7062b614a.d: crates/bench/src/bin/ablation_rank.rs

/root/repo/target/debug/deps/ablation_rank-7970cbd7062b614a: crates/bench/src/bin/ablation_rank.rs

crates/bench/src/bin/ablation_rank.rs:
