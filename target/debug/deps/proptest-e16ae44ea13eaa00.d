/root/repo/target/debug/deps/proptest-e16ae44ea13eaa00.d: stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e16ae44ea13eaa00.rlib: stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-e16ae44ea13eaa00.rmeta: stubs/proptest/src/lib.rs

stubs/proptest/src/lib.rs:
