/root/repo/target/debug/deps/serde-ee2904d55baf7a4e.d: stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ee2904d55baf7a4e.rlib: stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ee2904d55baf7a4e.rmeta: stubs/serde/src/lib.rs

stubs/serde/src/lib.rs:
