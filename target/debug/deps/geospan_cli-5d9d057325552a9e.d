/root/repo/target/debug/deps/geospan_cli-5d9d057325552a9e.d: src/bin/geospan-cli.rs

/root/repo/target/debug/deps/geospan_cli-5d9d057325552a9e: src/bin/geospan-cli.rs

src/bin/geospan-cli.rs:
