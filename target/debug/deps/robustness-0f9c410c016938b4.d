/root/repo/target/debug/deps/robustness-0f9c410c016938b4.d: crates/bench/src/bin/robustness.rs

/root/repo/target/debug/deps/robustness-0f9c410c016938b4: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:
