/root/repo/target/debug/deps/serde_derive-427db3b4d8116182.d: stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-427db3b4d8116182.so: stubs/serde_derive/src/lib.rs

stubs/serde_derive/src/lib.rs:
