/root/repo/target/debug/deps/geospan_cli-17568c45676fcf0b.d: src/bin/geospan-cli.rs

/root/repo/target/debug/deps/geospan_cli-17568c45676fcf0b: src/bin/geospan-cli.rs

src/bin/geospan-cli.rs:
