/root/repo/target/debug/deps/paper_claims-7b73b33e98984afb.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-7b73b33e98984afb: tests/paper_claims.rs

tests/paper_claims.rs:
