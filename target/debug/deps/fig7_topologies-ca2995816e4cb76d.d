/root/repo/target/debug/deps/fig7_topologies-ca2995816e4cb76d.d: crates/bench/src/bin/fig7_topologies.rs

/root/repo/target/debug/deps/fig7_topologies-ca2995816e4cb76d: crates/bench/src/bin/fig7_topologies.rs

crates/bench/src/bin/fig7_topologies.rs:
