/root/repo/target/debug/deps/geospan_geometry-4a8074193c8973a0.d: crates/geometry/src/lib.rs crates/geometry/src/circle.rs crates/geometry/src/expansion.rs crates/geometry/src/hull.rs crates/geometry/src/point.rs crates/geometry/src/predicates.rs crates/geometry/src/segment.rs crates/geometry/src/triangulation.rs

/root/repo/target/debug/deps/geospan_geometry-4a8074193c8973a0: crates/geometry/src/lib.rs crates/geometry/src/circle.rs crates/geometry/src/expansion.rs crates/geometry/src/hull.rs crates/geometry/src/point.rs crates/geometry/src/predicates.rs crates/geometry/src/segment.rs crates/geometry/src/triangulation.rs

crates/geometry/src/lib.rs:
crates/geometry/src/circle.rs:
crates/geometry/src/expansion.rs:
crates/geometry/src/hull.rs:
crates/geometry/src/point.rs:
crates/geometry/src/predicates.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/triangulation.rs:
