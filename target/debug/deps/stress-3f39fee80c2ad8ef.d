/root/repo/target/debug/deps/stress-3f39fee80c2ad8ef.d: crates/geometry/tests/stress.rs

/root/repo/target/debug/deps/stress-3f39fee80c2ad8ef: crates/geometry/tests/stress.rs

crates/geometry/tests/stress.rs:
