/root/repo/target/debug/deps/properties-0f3c9e4775b711c2.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-0f3c9e4775b711c2: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
