/root/repo/target/debug/deps/ldel_variants-f6388b823f9aedd2.d: crates/bench/src/bin/ldel_variants.rs

/root/repo/target/debug/deps/ldel_variants-f6388b823f9aedd2: crates/bench/src/bin/ldel_variants.rs

crates/bench/src/bin/ldel_variants.rs:
