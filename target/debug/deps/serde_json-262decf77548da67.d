/root/repo/target/debug/deps/serde_json-262decf77548da67.d: stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-262decf77548da67.rlib: stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-262decf77548da67.rmeta: stubs/serde_json/src/lib.rs

stubs/serde_json/src/lib.rs:
