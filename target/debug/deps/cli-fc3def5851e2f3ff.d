/root/repo/target/debug/deps/cli-fc3def5851e2f3ff.d: tests/cli.rs

/root/repo/target/debug/deps/cli-fc3def5851e2f3ff: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_geospan-cli=/root/repo/target/debug/geospan-cli
