/root/repo/target/debug/deps/rdg_comparison-4bf3ae95ea8d18b4.d: crates/bench/src/bin/rdg_comparison.rs

/root/repo/target/debug/deps/rdg_comparison-4bf3ae95ea8d18b4: crates/bench/src/bin/rdg_comparison.rs

crates/bench/src/bin/rdg_comparison.rs:
