/root/repo/target/debug/deps/geospan_sim-78f3166b0b60878a.d: crates/sim/src/lib.rs crates/sim/src/fault.rs

/root/repo/target/debug/deps/geospan_sim-78f3166b0b60878a: crates/sim/src/lib.rs crates/sim/src/fault.rs

crates/sim/src/lib.rs:
crates/sim/src/fault.rs:
