/root/repo/target/debug/deps/fig8_degree-3b74b118272dc3a1.d: crates/bench/src/bin/fig8_degree.rs

/root/repo/target/debug/deps/fig8_degree-3b74b118272dc3a1: crates/bench/src/bin/fig8_degree.rs

crates/bench/src/bin/fig8_degree.rs:
