/root/repo/target/debug/deps/fig10_messages-d49f7b0fdeb34ade.d: crates/bench/src/bin/fig10_messages.rs

/root/repo/target/debug/deps/fig10_messages-d49f7b0fdeb34ade: crates/bench/src/bin/fig10_messages.rs

crates/bench/src/bin/fig10_messages.rs:
