/root/repo/target/debug/deps/criterion-bb23ddbb6dcb1a63.d: stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-bb23ddbb6dcb1a63.rlib: stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-bb23ddbb6dcb1a63.rmeta: stubs/criterion/src/lib.rs

stubs/criterion/src/lib.rs:
