/root/repo/target/debug/deps/table1-3e70106879eb8165.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3e70106879eb8165: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
