/root/repo/target/debug/deps/properties-d1a19d065f6b557f.d: crates/geometry/tests/properties.rs

/root/repo/target/debug/deps/properties-d1a19d065f6b557f: crates/geometry/tests/properties.rs

crates/geometry/tests/properties.rs:
