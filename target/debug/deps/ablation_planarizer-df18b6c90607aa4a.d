/root/repo/target/debug/deps/ablation_planarizer-df18b6c90607aa4a.d: crates/bench/src/bin/ablation_planarizer.rs

/root/repo/target/debug/deps/ablation_planarizer-df18b6c90607aa4a: crates/bench/src/bin/ablation_planarizer.rs

crates/bench/src/bin/ablation_planarizer.rs:
