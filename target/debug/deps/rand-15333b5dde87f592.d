/root/repo/target/debug/deps/rand-15333b5dde87f592.d: stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-15333b5dde87f592.rlib: stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-15333b5dde87f592.rmeta: stubs/rand/src/lib.rs

stubs/rand/src/lib.rs:
