/root/repo/target/debug/deps/fault_properties-a2ae26014bf81a0f.d: tests/fault_properties.rs

/root/repo/target/debug/deps/fault_properties-a2ae26014bf81a0f: tests/fault_properties.rs

tests/fault_properties.rs:
