/root/repo/target/debug/deps/large_scale-c3ebd7371dcac3c8.d: tests/large_scale.rs

/root/repo/target/debug/deps/large_scale-c3ebd7371dcac3c8: tests/large_scale.rs

tests/large_scale.rs:
