/root/repo/target/debug/deps/rand_chacha-0773578be73ea79f.d: stubs/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-0773578be73ea79f.rlib: stubs/rand_chacha/src/lib.rs

/root/repo/target/debug/deps/librand_chacha-0773578be73ea79f.rmeta: stubs/rand_chacha/src/lib.rs

stubs/rand_chacha/src/lib.rs:
