/root/repo/target/debug/deps/properties-895fc51d90719f13.d: tests/properties.rs

/root/repo/target/debug/deps/properties-895fc51d90719f13: tests/properties.rs

tests/properties.rs:
