/root/repo/target/debug/deps/routing-d1988740840e0316.d: tests/routing.rs

/root/repo/target/debug/deps/routing-d1988740840e0316: tests/routing.rs

tests/routing.rs:
