/root/repo/target/debug/deps/geospan_geometry-04dacaa67044acaa.d: crates/geometry/src/lib.rs crates/geometry/src/circle.rs crates/geometry/src/expansion.rs crates/geometry/src/hull.rs crates/geometry/src/point.rs crates/geometry/src/predicates.rs crates/geometry/src/segment.rs crates/geometry/src/triangulation.rs

/root/repo/target/debug/deps/libgeospan_geometry-04dacaa67044acaa.rlib: crates/geometry/src/lib.rs crates/geometry/src/circle.rs crates/geometry/src/expansion.rs crates/geometry/src/hull.rs crates/geometry/src/point.rs crates/geometry/src/predicates.rs crates/geometry/src/segment.rs crates/geometry/src/triangulation.rs

/root/repo/target/debug/deps/libgeospan_geometry-04dacaa67044acaa.rmeta: crates/geometry/src/lib.rs crates/geometry/src/circle.rs crates/geometry/src/expansion.rs crates/geometry/src/hull.rs crates/geometry/src/point.rs crates/geometry/src/predicates.rs crates/geometry/src/segment.rs crates/geometry/src/triangulation.rs

crates/geometry/src/lib.rs:
crates/geometry/src/circle.rs:
crates/geometry/src/expansion.rs:
crates/geometry/src/hull.rs:
crates/geometry/src/point.rs:
crates/geometry/src/predicates.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/triangulation.rs:
