/root/repo/target/debug/deps/degenerate-67c624e0db48c614.d: tests/degenerate.rs

/root/repo/target/debug/deps/degenerate-67c624e0db48c614: tests/degenerate.rs

tests/degenerate.rs:
