/root/repo/target/debug/deps/geospan_core-bbcab21589059d97.d: crates/core/src/lib.rs crates/core/src/backbone.rs crates/core/src/maintenance.rs crates/core/src/routing.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/geospan_core-bbcab21589059d97: crates/core/src/lib.rs crates/core/src/backbone.rs crates/core/src/maintenance.rs crates/core/src/routing.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/backbone.rs:
crates/core/src/maintenance.rs:
crates/core/src/routing.rs:
crates/core/src/verify.rs:
