/root/repo/target/debug/deps/geospan-80ec7332318bb06d.d: src/lib.rs

/root/repo/target/debug/deps/geospan-80ec7332318bb06d: src/lib.rs

src/lib.rs:
