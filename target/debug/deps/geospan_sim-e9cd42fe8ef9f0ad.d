/root/repo/target/debug/deps/geospan_sim-e9cd42fe8ef9f0ad.d: crates/sim/src/lib.rs crates/sim/src/fault.rs

/root/repo/target/debug/deps/libgeospan_sim-e9cd42fe8ef9f0ad.rlib: crates/sim/src/lib.rs crates/sim/src/fault.rs

/root/repo/target/debug/deps/libgeospan_sim-e9cd42fe8ef9f0ad.rmeta: crates/sim/src/lib.rs crates/sim/src/fault.rs

crates/sim/src/lib.rs:
crates/sim/src/fault.rs:
