/root/repo/target/debug/deps/power_stretch-b58ec5e1fc41f85e.d: crates/bench/src/bin/power_stretch.rs

/root/repo/target/debug/deps/power_stretch-b58ec5e1fc41f85e: crates/bench/src/bin/power_stretch.rs

crates/bench/src/bin/power_stretch.rs:
