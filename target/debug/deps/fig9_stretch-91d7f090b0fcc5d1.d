/root/repo/target/debug/deps/fig9_stretch-91d7f090b0fcc5d1.d: crates/bench/src/bin/fig9_stretch.rs

/root/repo/target/debug/deps/fig9_stretch-91d7f090b0fcc5d1: crates/bench/src/bin/fig9_stretch.rs

crates/bench/src/bin/fig9_stretch.rs:
