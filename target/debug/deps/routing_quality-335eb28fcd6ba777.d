/root/repo/target/debug/deps/routing_quality-335eb28fcd6ba777.d: crates/bench/src/bin/routing_quality.rs

/root/repo/target/debug/deps/routing_quality-335eb28fcd6ba777: crates/bench/src/bin/routing_quality.rs

crates/bench/src/bin/routing_quality.rs:
