/root/repo/target/debug/deps/properties-b6d39f1f6031fd94.d: crates/graph/tests/properties.rs

/root/repo/target/debug/deps/properties-b6d39f1f6031fd94: crates/graph/tests/properties.rs

crates/graph/tests/properties.rs:
