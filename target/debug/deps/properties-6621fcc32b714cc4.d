/root/repo/target/debug/deps/properties-6621fcc32b714cc4.d: crates/topology/tests/properties.rs

/root/repo/target/debug/deps/properties-6621fcc32b714cc4: crates/topology/tests/properties.rs

crates/topology/tests/properties.rs:
