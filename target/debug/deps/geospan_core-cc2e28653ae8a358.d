/root/repo/target/debug/deps/geospan_core-cc2e28653ae8a358.d: crates/core/src/lib.rs crates/core/src/backbone.rs crates/core/src/maintenance.rs crates/core/src/routing.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libgeospan_core-cc2e28653ae8a358.rlib: crates/core/src/lib.rs crates/core/src/backbone.rs crates/core/src/maintenance.rs crates/core/src/routing.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libgeospan_core-cc2e28653ae8a358.rmeta: crates/core/src/lib.rs crates/core/src/backbone.rs crates/core/src/maintenance.rs crates/core/src/routing.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/backbone.rs:
crates/core/src/maintenance.rs:
crates/core/src/routing.rs:
crates/core/src/verify.rs:
