/root/repo/target/debug/deps/geospan-203178954c9d8d2f.d: src/lib.rs

/root/repo/target/debug/deps/libgeospan-203178954c9d8d2f.rlib: src/lib.rs

/root/repo/target/debug/deps/libgeospan-203178954c9d8d2f.rmeta: src/lib.rs

src/lib.rs:
