/root/repo/target/debug/deps/geospan_bench-2ad376554d39bfbc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgeospan_bench-2ad376554d39bfbc.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgeospan_bench-2ad376554d39bfbc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
