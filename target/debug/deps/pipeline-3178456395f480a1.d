/root/repo/target/debug/deps/pipeline-3178456395f480a1.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-3178456395f480a1: tests/pipeline.rs

tests/pipeline.rs:
