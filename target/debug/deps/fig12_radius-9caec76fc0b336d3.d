/root/repo/target/debug/deps/fig12_radius-9caec76fc0b336d3.d: crates/bench/src/bin/fig12_radius.rs

/root/repo/target/debug/deps/fig12_radius-9caec76fc0b336d3: crates/bench/src/bin/fig12_radius.rs

crates/bench/src/bin/fig12_radius.rs:
