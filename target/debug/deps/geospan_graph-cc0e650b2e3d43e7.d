/root/repo/target/debug/deps/geospan_graph-cc0e650b2e3d43e7.d: crates/graph/src/lib.rs crates/graph/src/diameter.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/planarity.rs crates/graph/src/power.rs crates/graph/src/stats.rs crates/graph/src/stretch.rs crates/graph/src/svg.rs

/root/repo/target/debug/deps/libgeospan_graph-cc0e650b2e3d43e7.rlib: crates/graph/src/lib.rs crates/graph/src/diameter.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/planarity.rs crates/graph/src/power.rs crates/graph/src/stats.rs crates/graph/src/stretch.rs crates/graph/src/svg.rs

/root/repo/target/debug/deps/libgeospan_graph-cc0e650b2e3d43e7.rmeta: crates/graph/src/lib.rs crates/graph/src/diameter.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/planarity.rs crates/graph/src/power.rs crates/graph/src/stats.rs crates/graph/src/stretch.rs crates/graph/src/svg.rs

crates/graph/src/lib.rs:
crates/graph/src/diameter.rs:
crates/graph/src/gen.rs:
crates/graph/src/graph.rs:
crates/graph/src/paths.rs:
crates/graph/src/planarity.rs:
crates/graph/src/power.rs:
crates/graph/src/stats.rs:
crates/graph/src/stretch.rs:
crates/graph/src/svg.rs:
