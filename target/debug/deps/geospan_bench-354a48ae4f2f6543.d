/root/repo/target/debug/deps/geospan_bench-354a48ae4f2f6543.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/geospan_bench-354a48ae4f2f6543: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
