/root/repo/target/debug/deps/fig11_stretch_radius-79d6a94c5654d0f8.d: crates/bench/src/bin/fig11_stretch_radius.rs

/root/repo/target/debug/deps/fig11_stretch_radius-79d6a94c5654d0f8: crates/bench/src/bin/fig11_stretch_radius.rs

crates/bench/src/bin/fig11_stretch_radius.rs:
