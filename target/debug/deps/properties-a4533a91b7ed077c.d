/root/repo/target/debug/deps/properties-a4533a91b7ed077c.d: crates/cds/tests/properties.rs

/root/repo/target/debug/deps/properties-a4533a91b7ed077c: crates/cds/tests/properties.rs

crates/cds/tests/properties.rs:
