/root/repo/target/debug/deps/geospan_topology-d521e7e5cb66388c.d: crates/topology/src/lib.rs crates/topology/src/distributed.rs crates/topology/src/distributed2.rs crates/topology/src/gabriel.rs crates/topology/src/ldel.rs crates/topology/src/rdg.rs crates/topology/src/rng.rs crates/topology/src/yao.rs

/root/repo/target/debug/deps/geospan_topology-d521e7e5cb66388c: crates/topology/src/lib.rs crates/topology/src/distributed.rs crates/topology/src/distributed2.rs crates/topology/src/gabriel.rs crates/topology/src/ldel.rs crates/topology/src/rdg.rs crates/topology/src/rng.rs crates/topology/src/yao.rs

crates/topology/src/lib.rs:
crates/topology/src/distributed.rs:
crates/topology/src/distributed2.rs:
crates/topology/src/gabriel.rs:
crates/topology/src/ldel.rs:
crates/topology/src/rdg.rs:
crates/topology/src/rng.rs:
crates/topology/src/yao.rs:
