/root/repo/target/debug/deps/geospan_graph-26f7c9a6daec4e7f.d: crates/graph/src/lib.rs crates/graph/src/diameter.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/planarity.rs crates/graph/src/power.rs crates/graph/src/stats.rs crates/graph/src/stretch.rs crates/graph/src/svg.rs

/root/repo/target/debug/deps/geospan_graph-26f7c9a6daec4e7f: crates/graph/src/lib.rs crates/graph/src/diameter.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/planarity.rs crates/graph/src/power.rs crates/graph/src/stats.rs crates/graph/src/stretch.rs crates/graph/src/svg.rs

crates/graph/src/lib.rs:
crates/graph/src/diameter.rs:
crates/graph/src/gen.rs:
crates/graph/src/graph.rs:
crates/graph/src/paths.rs:
crates/graph/src/planarity.rs:
crates/graph/src/power.rs:
crates/graph/src/stats.rs:
crates/graph/src/stretch.rs:
crates/graph/src/svg.rs:
