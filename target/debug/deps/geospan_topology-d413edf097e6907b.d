/root/repo/target/debug/deps/geospan_topology-d413edf097e6907b.d: crates/topology/src/lib.rs crates/topology/src/distributed.rs crates/topology/src/distributed2.rs crates/topology/src/gabriel.rs crates/topology/src/ldel.rs crates/topology/src/rdg.rs crates/topology/src/rng.rs crates/topology/src/yao.rs

/root/repo/target/debug/deps/libgeospan_topology-d413edf097e6907b.rlib: crates/topology/src/lib.rs crates/topology/src/distributed.rs crates/topology/src/distributed2.rs crates/topology/src/gabriel.rs crates/topology/src/ldel.rs crates/topology/src/rdg.rs crates/topology/src/rng.rs crates/topology/src/yao.rs

/root/repo/target/debug/deps/libgeospan_topology-d413edf097e6907b.rmeta: crates/topology/src/lib.rs crates/topology/src/distributed.rs crates/topology/src/distributed2.rs crates/topology/src/gabriel.rs crates/topology/src/ldel.rs crates/topology/src/rdg.rs crates/topology/src/rng.rs crates/topology/src/yao.rs

crates/topology/src/lib.rs:
crates/topology/src/distributed.rs:
crates/topology/src/distributed2.rs:
crates/topology/src/gabriel.rs:
crates/topology/src/ldel.rs:
crates/topology/src/rdg.rs:
crates/topology/src/rng.rs:
crates/topology/src/yao.rs:
