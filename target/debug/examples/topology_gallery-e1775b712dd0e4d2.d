/root/repo/target/debug/examples/topology_gallery-e1775b712dd0e4d2.d: examples/topology_gallery.rs

/root/repo/target/debug/examples/topology_gallery-e1775b712dd0e4d2: examples/topology_gallery.rs

examples/topology_gallery.rs:
