/root/repo/target/debug/examples/mobility-be48ea49a76955a1.d: examples/mobility.rs

/root/repo/target/debug/examples/mobility-be48ea49a76955a1: examples/mobility.rs

examples/mobility.rs:
