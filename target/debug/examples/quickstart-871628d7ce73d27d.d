/root/repo/target/debug/examples/quickstart-871628d7ce73d27d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-871628d7ce73d27d: examples/quickstart.rs

examples/quickstart.rs:
