/root/repo/target/debug/examples/sensor_network-c81a0a88042b67cc.d: examples/sensor_network.rs

/root/repo/target/debug/examples/sensor_network-c81a0a88042b67cc: examples/sensor_network.rs

examples/sensor_network.rs:
