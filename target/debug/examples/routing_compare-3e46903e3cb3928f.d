/root/repo/target/debug/examples/routing_compare-3e46903e3cb3928f.d: examples/routing_compare.rs

/root/repo/target/debug/examples/routing_compare-3e46903e3cb3928f: examples/routing_compare.rs

examples/routing_compare.rs:
