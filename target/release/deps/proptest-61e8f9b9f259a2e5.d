/root/repo/target/release/deps/proptest-61e8f9b9f259a2e5.d: stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-61e8f9b9f259a2e5.rmeta: stubs/proptest/src/lib.rs

stubs/proptest/src/lib.rs:
