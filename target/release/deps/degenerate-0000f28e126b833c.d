/root/repo/target/release/deps/degenerate-0000f28e126b833c.d: tests/degenerate.rs

/root/repo/target/release/deps/degenerate-0000f28e126b833c: tests/degenerate.rs

tests/degenerate.rs:
