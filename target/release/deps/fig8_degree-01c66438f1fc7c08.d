/root/repo/target/release/deps/fig8_degree-01c66438f1fc7c08.d: crates/bench/src/bin/fig8_degree.rs

/root/repo/target/release/deps/fig8_degree-01c66438f1fc7c08: crates/bench/src/bin/fig8_degree.rs

crates/bench/src/bin/fig8_degree.rs:
