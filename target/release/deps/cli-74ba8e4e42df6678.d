/root/repo/target/release/deps/cli-74ba8e4e42df6678.d: tests/cli.rs

/root/repo/target/release/deps/cli-74ba8e4e42df6678: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_geospan-cli=/root/repo/target/release/geospan-cli
