/root/repo/target/release/deps/routing-e6e1d8e21cf5dca3.d: crates/bench/benches/routing.rs Cargo.toml

/root/repo/target/release/deps/librouting-e6e1d8e21cf5dca3.rmeta: crates/bench/benches/routing.rs Cargo.toml

crates/bench/benches/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
