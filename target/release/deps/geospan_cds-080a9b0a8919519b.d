/root/repo/target/release/deps/geospan_cds-080a9b0a8919519b.d: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs Cargo.toml

/root/repo/target/release/deps/libgeospan_cds-080a9b0a8919519b.rmeta: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs Cargo.toml

crates/cds/src/lib.rs:
crates/cds/src/cluster.rs:
crates/cds/src/connector.rs:
crates/cds/src/dhop.rs:
crates/cds/src/protocol.rs:
crates/cds/src/rank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
