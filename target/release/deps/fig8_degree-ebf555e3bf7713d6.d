/root/repo/target/release/deps/fig8_degree-ebf555e3bf7713d6.d: crates/bench/src/bin/fig8_degree.rs Cargo.toml

/root/repo/target/release/deps/libfig8_degree-ebf555e3bf7713d6.rmeta: crates/bench/src/bin/fig8_degree.rs Cargo.toml

crates/bench/src/bin/fig8_degree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
