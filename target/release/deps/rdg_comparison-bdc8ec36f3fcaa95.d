/root/repo/target/release/deps/rdg_comparison-bdc8ec36f3fcaa95.d: crates/bench/src/bin/rdg_comparison.rs

/root/repo/target/release/deps/rdg_comparison-bdc8ec36f3fcaa95: crates/bench/src/bin/rdg_comparison.rs

crates/bench/src/bin/rdg_comparison.rs:
