/root/repo/target/release/deps/table1-7b45457c8565d294.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/release/deps/libtable1-7b45457c8565d294.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
