/root/repo/target/release/deps/properties-ab22af6943965716.d: crates/graph/tests/properties.rs

/root/repo/target/release/deps/properties-ab22af6943965716: crates/graph/tests/properties.rs

crates/graph/tests/properties.rs:
