/root/repo/target/release/deps/geospan_geometry-13404a1095399c5f.d: crates/geometry/src/lib.rs crates/geometry/src/circle.rs crates/geometry/src/expansion.rs crates/geometry/src/hull.rs crates/geometry/src/point.rs crates/geometry/src/predicates.rs crates/geometry/src/segment.rs crates/geometry/src/triangulation.rs Cargo.toml

/root/repo/target/release/deps/libgeospan_geometry-13404a1095399c5f.rmeta: crates/geometry/src/lib.rs crates/geometry/src/circle.rs crates/geometry/src/expansion.rs crates/geometry/src/hull.rs crates/geometry/src/point.rs crates/geometry/src/predicates.rs crates/geometry/src/segment.rs crates/geometry/src/triangulation.rs Cargo.toml

crates/geometry/src/lib.rs:
crates/geometry/src/circle.rs:
crates/geometry/src/expansion.rs:
crates/geometry/src/hull.rs:
crates/geometry/src/point.rs:
crates/geometry/src/predicates.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/triangulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
