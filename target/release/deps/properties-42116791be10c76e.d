/root/repo/target/release/deps/properties-42116791be10c76e.d: crates/cds/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-42116791be10c76e.rmeta: crates/cds/tests/properties.rs Cargo.toml

crates/cds/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
