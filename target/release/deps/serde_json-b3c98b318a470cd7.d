/root/repo/target/release/deps/serde_json-b3c98b318a470cd7.d: stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-b3c98b318a470cd7.rmeta: stubs/serde_json/src/lib.rs

stubs/serde_json/src/lib.rs:
