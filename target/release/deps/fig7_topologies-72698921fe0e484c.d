/root/repo/target/release/deps/fig7_topologies-72698921fe0e484c.d: crates/bench/src/bin/fig7_topologies.rs

/root/repo/target/release/deps/fig7_topologies-72698921fe0e484c: crates/bench/src/bin/fig7_topologies.rs

crates/bench/src/bin/fig7_topologies.rs:
