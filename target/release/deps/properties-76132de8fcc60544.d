/root/repo/target/release/deps/properties-76132de8fcc60544.d: crates/topology/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-76132de8fcc60544.rmeta: crates/topology/tests/properties.rs Cargo.toml

crates/topology/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
