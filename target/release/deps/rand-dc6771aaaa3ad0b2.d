/root/repo/target/release/deps/rand-dc6771aaaa3ad0b2.d: stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-dc6771aaaa3ad0b2.rlib: stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-dc6771aaaa3ad0b2.rmeta: stubs/rand/src/lib.rs

stubs/rand/src/lib.rs:
