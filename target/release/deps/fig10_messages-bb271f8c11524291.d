/root/repo/target/release/deps/fig10_messages-bb271f8c11524291.d: crates/bench/src/bin/fig10_messages.rs Cargo.toml

/root/repo/target/release/deps/libfig10_messages-bb271f8c11524291.rmeta: crates/bench/src/bin/fig10_messages.rs Cargo.toml

crates/bench/src/bin/fig10_messages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
