/root/repo/target/release/deps/fig9_stretch-e80f9cfa4a383911.d: crates/bench/src/bin/fig9_stretch.rs

/root/repo/target/release/deps/fig9_stretch-e80f9cfa4a383911: crates/bench/src/bin/fig9_stretch.rs

crates/bench/src/bin/fig9_stretch.rs:
