/root/repo/target/release/deps/ldel_variants-aecad9a4ce3c581c.d: crates/bench/src/bin/ldel_variants.rs

/root/repo/target/release/deps/ldel_variants-aecad9a4ce3c581c: crates/bench/src/bin/ldel_variants.rs

crates/bench/src/bin/ldel_variants.rs:
