/root/repo/target/release/deps/geospan_cli-a89e3b2592a266f0.d: src/bin/geospan-cli.rs Cargo.toml

/root/repo/target/release/deps/libgeospan_cli-a89e3b2592a266f0.rmeta: src/bin/geospan-cli.rs Cargo.toml

src/bin/geospan-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
