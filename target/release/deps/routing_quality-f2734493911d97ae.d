/root/repo/target/release/deps/routing_quality-f2734493911d97ae.d: crates/bench/src/bin/routing_quality.rs

/root/repo/target/release/deps/routing_quality-f2734493911d97ae: crates/bench/src/bin/routing_quality.rs

crates/bench/src/bin/routing_quality.rs:
