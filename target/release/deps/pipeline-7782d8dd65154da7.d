/root/repo/target/release/deps/pipeline-7782d8dd65154da7.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-7782d8dd65154da7: tests/pipeline.rs

tests/pipeline.rs:
