/root/repo/target/release/deps/geospan_core-a99a2325a0c6b9bd.d: crates/core/src/lib.rs crates/core/src/backbone.rs crates/core/src/maintenance.rs crates/core/src/routing.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libgeospan_core-a99a2325a0c6b9bd.rlib: crates/core/src/lib.rs crates/core/src/backbone.rs crates/core/src/maintenance.rs crates/core/src/routing.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libgeospan_core-a99a2325a0c6b9bd.rmeta: crates/core/src/lib.rs crates/core/src/backbone.rs crates/core/src/maintenance.rs crates/core/src/routing.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/backbone.rs:
crates/core/src/maintenance.rs:
crates/core/src/routing.rs:
crates/core/src/verify.rs:
