/root/repo/target/release/deps/rdg_comparison-7c4200399a79946e.d: crates/bench/src/bin/rdg_comparison.rs

/root/repo/target/release/deps/rdg_comparison-7c4200399a79946e: crates/bench/src/bin/rdg_comparison.rs

crates/bench/src/bin/rdg_comparison.rs:
