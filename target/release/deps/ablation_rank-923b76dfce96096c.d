/root/repo/target/release/deps/ablation_rank-923b76dfce96096c.d: crates/bench/src/bin/ablation_rank.rs

/root/repo/target/release/deps/ablation_rank-923b76dfce96096c: crates/bench/src/bin/ablation_rank.rs

crates/bench/src/bin/ablation_rank.rs:
