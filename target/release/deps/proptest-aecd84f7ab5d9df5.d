/root/repo/target/release/deps/proptest-aecd84f7ab5d9df5.d: stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-aecd84f7ab5d9df5.rlib: stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-aecd84f7ab5d9df5.rmeta: stubs/proptest/src/lib.rs

stubs/proptest/src/lib.rs:
