/root/repo/target/release/deps/stress-2859efccdf9026fa.d: crates/geometry/tests/stress.rs

/root/repo/target/release/deps/stress-2859efccdf9026fa: crates/geometry/tests/stress.rs

crates/geometry/tests/stress.rs:
