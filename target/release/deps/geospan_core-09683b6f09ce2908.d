/root/repo/target/release/deps/geospan_core-09683b6f09ce2908.d: crates/core/src/lib.rs crates/core/src/backbone.rs crates/core/src/maintenance.rs crates/core/src/routing.rs crates/core/src/verify.rs Cargo.toml

/root/repo/target/release/deps/libgeospan_core-09683b6f09ce2908.rmeta: crates/core/src/lib.rs crates/core/src/backbone.rs crates/core/src/maintenance.rs crates/core/src/routing.rs crates/core/src/verify.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/backbone.rs:
crates/core/src/maintenance.rs:
crates/core/src/routing.rs:
crates/core/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
