/root/repo/target/release/deps/paper_claims-bfcf7e6185fb409f.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-bfcf7e6185fb409f: tests/paper_claims.rs

tests/paper_claims.rs:
