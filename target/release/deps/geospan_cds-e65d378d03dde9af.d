/root/repo/target/release/deps/geospan_cds-e65d378d03dde9af.d: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs

/root/repo/target/release/deps/geospan_cds-e65d378d03dde9af: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs

crates/cds/src/lib.rs:
crates/cds/src/cluster.rs:
crates/cds/src/connector.rs:
crates/cds/src/dhop.rs:
crates/cds/src/protocol.rs:
crates/cds/src/rank.rs:
