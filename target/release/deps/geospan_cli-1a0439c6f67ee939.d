/root/repo/target/release/deps/geospan_cli-1a0439c6f67ee939.d: src/bin/geospan-cli.rs Cargo.toml

/root/repo/target/release/deps/libgeospan_cli-1a0439c6f67ee939.rmeta: src/bin/geospan-cli.rs Cargo.toml

src/bin/geospan-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
