/root/repo/target/release/deps/fig7_topologies-80522f71348ac1f7.d: crates/bench/src/bin/fig7_topologies.rs Cargo.toml

/root/repo/target/release/deps/libfig7_topologies-80522f71348ac1f7.rmeta: crates/bench/src/bin/fig7_topologies.rs Cargo.toml

crates/bench/src/bin/fig7_topologies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
