/root/repo/target/release/deps/geospan-df34d22bbd082cc7.d: src/lib.rs

/root/repo/target/release/deps/libgeospan-df34d22bbd082cc7.rlib: src/lib.rs

/root/repo/target/release/deps/libgeospan-df34d22bbd082cc7.rmeta: src/lib.rs

src/lib.rs:
