/root/repo/target/release/deps/fig7_topologies-490b2249da257ad1.d: crates/bench/src/bin/fig7_topologies.rs

/root/repo/target/release/deps/fig7_topologies-490b2249da257ad1: crates/bench/src/bin/fig7_topologies.rs

crates/bench/src/bin/fig7_topologies.rs:
