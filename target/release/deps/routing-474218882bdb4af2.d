/root/repo/target/release/deps/routing-474218882bdb4af2.d: tests/routing.rs

/root/repo/target/release/deps/routing-474218882bdb4af2: tests/routing.rs

tests/routing.rs:
