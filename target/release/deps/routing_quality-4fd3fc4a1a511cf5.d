/root/repo/target/release/deps/routing_quality-4fd3fc4a1a511cf5.d: crates/bench/src/bin/routing_quality.rs

/root/repo/target/release/deps/routing_quality-4fd3fc4a1a511cf5: crates/bench/src/bin/routing_quality.rs

crates/bench/src/bin/routing_quality.rs:
