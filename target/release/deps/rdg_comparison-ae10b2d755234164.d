/root/repo/target/release/deps/rdg_comparison-ae10b2d755234164.d: crates/bench/src/bin/rdg_comparison.rs Cargo.toml

/root/repo/target/release/deps/librdg_comparison-ae10b2d755234164.rmeta: crates/bench/src/bin/rdg_comparison.rs Cargo.toml

crates/bench/src/bin/rdg_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
