/root/repo/target/release/deps/stress-ee2785aa3ca4e094.d: crates/geometry/tests/stress.rs Cargo.toml

/root/repo/target/release/deps/libstress-ee2785aa3ca4e094.rmeta: crates/geometry/tests/stress.rs Cargo.toml

crates/geometry/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
