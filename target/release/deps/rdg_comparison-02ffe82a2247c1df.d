/root/repo/target/release/deps/rdg_comparison-02ffe82a2247c1df.d: crates/bench/src/bin/rdg_comparison.rs Cargo.toml

/root/repo/target/release/deps/librdg_comparison-02ffe82a2247c1df.rmeta: crates/bench/src/bin/rdg_comparison.rs Cargo.toml

crates/bench/src/bin/rdg_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
