/root/repo/target/release/deps/fig11_stretch_radius-c7b406d1bac1786a.d: crates/bench/src/bin/fig11_stretch_radius.rs Cargo.toml

/root/repo/target/release/deps/libfig11_stretch_radius-c7b406d1bac1786a.rmeta: crates/bench/src/bin/fig11_stretch_radius.rs Cargo.toml

crates/bench/src/bin/fig11_stretch_radius.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
