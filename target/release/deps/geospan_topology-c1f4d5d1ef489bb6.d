/root/repo/target/release/deps/geospan_topology-c1f4d5d1ef489bb6.d: crates/topology/src/lib.rs crates/topology/src/distributed.rs crates/topology/src/distributed2.rs crates/topology/src/gabriel.rs crates/topology/src/ldel.rs crates/topology/src/rdg.rs crates/topology/src/rng.rs crates/topology/src/yao.rs Cargo.toml

/root/repo/target/release/deps/libgeospan_topology-c1f4d5d1ef489bb6.rmeta: crates/topology/src/lib.rs crates/topology/src/distributed.rs crates/topology/src/distributed2.rs crates/topology/src/gabriel.rs crates/topology/src/ldel.rs crates/topology/src/rdg.rs crates/topology/src/rng.rs crates/topology/src/yao.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/distributed.rs:
crates/topology/src/distributed2.rs:
crates/topology/src/gabriel.rs:
crates/topology/src/ldel.rs:
crates/topology/src/rdg.rs:
crates/topology/src/rng.rs:
crates/topology/src/yao.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
