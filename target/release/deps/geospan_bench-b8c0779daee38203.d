/root/repo/target/release/deps/geospan_bench-b8c0779daee38203.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libgeospan_bench-b8c0779daee38203.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
