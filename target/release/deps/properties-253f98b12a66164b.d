/root/repo/target/release/deps/properties-253f98b12a66164b.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-253f98b12a66164b.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
