/root/repo/target/release/deps/rand_chacha-443928831f1b443b.d: stubs/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-443928831f1b443b.rmeta: stubs/rand_chacha/src/lib.rs

stubs/rand_chacha/src/lib.rs:
