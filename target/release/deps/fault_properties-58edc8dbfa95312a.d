/root/repo/target/release/deps/fault_properties-58edc8dbfa95312a.d: tests/fault_properties.rs Cargo.toml

/root/repo/target/release/deps/libfault_properties-58edc8dbfa95312a.rmeta: tests/fault_properties.rs Cargo.toml

tests/fault_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
