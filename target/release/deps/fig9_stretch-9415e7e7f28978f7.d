/root/repo/target/release/deps/fig9_stretch-9415e7e7f28978f7.d: crates/bench/src/bin/fig9_stretch.rs

/root/repo/target/release/deps/fig9_stretch-9415e7e7f28978f7: crates/bench/src/bin/fig9_stretch.rs

crates/bench/src/bin/fig9_stretch.rs:
