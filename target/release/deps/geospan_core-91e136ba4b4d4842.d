/root/repo/target/release/deps/geospan_core-91e136ba4b4d4842.d: crates/core/src/lib.rs crates/core/src/backbone.rs crates/core/src/maintenance.rs crates/core/src/routing.rs crates/core/src/verify.rs

/root/repo/target/release/deps/geospan_core-91e136ba4b4d4842: crates/core/src/lib.rs crates/core/src/backbone.rs crates/core/src/maintenance.rs crates/core/src/routing.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/backbone.rs:
crates/core/src/maintenance.rs:
crates/core/src/routing.rs:
crates/core/src/verify.rs:
