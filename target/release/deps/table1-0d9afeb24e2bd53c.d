/root/repo/target/release/deps/table1-0d9afeb24e2bd53c.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-0d9afeb24e2bd53c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
