/root/repo/target/release/deps/predicates-66b14a8f6b3e3bcf.d: crates/bench/benches/predicates.rs Cargo.toml

/root/repo/target/release/deps/libpredicates-66b14a8f6b3e3bcf.rmeta: crates/bench/benches/predicates.rs Cargo.toml

crates/bench/benches/predicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
