/root/repo/target/release/deps/large_scale-bc12c02bef4c11f6.d: tests/large_scale.rs

/root/repo/target/release/deps/large_scale-bc12c02bef4c11f6: tests/large_scale.rs

tests/large_scale.rs:
