/root/repo/target/release/deps/geospan-3724ce95bcfb13c9.d: src/lib.rs

/root/repo/target/release/deps/geospan-3724ce95bcfb13c9: src/lib.rs

src/lib.rs:
