/root/repo/target/release/deps/degenerate-2339282bb4fef181.d: tests/degenerate.rs Cargo.toml

/root/repo/target/release/deps/libdegenerate-2339282bb4fef181.rmeta: tests/degenerate.rs Cargo.toml

tests/degenerate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
