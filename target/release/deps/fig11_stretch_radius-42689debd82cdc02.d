/root/repo/target/release/deps/fig11_stretch_radius-42689debd82cdc02.d: crates/bench/src/bin/fig11_stretch_radius.rs

/root/repo/target/release/deps/fig11_stretch_radius-42689debd82cdc02: crates/bench/src/bin/fig11_stretch_radius.rs

crates/bench/src/bin/fig11_stretch_radius.rs:
