/root/repo/target/release/deps/fig10_messages-945bf9edd9ef5a6d.d: crates/bench/src/bin/fig10_messages.rs

/root/repo/target/release/deps/fig10_messages-945bf9edd9ef5a6d: crates/bench/src/bin/fig10_messages.rs

crates/bench/src/bin/fig10_messages.rs:
