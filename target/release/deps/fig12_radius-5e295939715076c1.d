/root/repo/target/release/deps/fig12_radius-5e295939715076c1.d: crates/bench/src/bin/fig12_radius.rs Cargo.toml

/root/repo/target/release/deps/libfig12_radius-5e295939715076c1.rmeta: crates/bench/src/bin/fig12_radius.rs Cargo.toml

crates/bench/src/bin/fig12_radius.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
