/root/repo/target/release/deps/routing_quality-cab77ccb5dd67782.d: crates/bench/src/bin/routing_quality.rs Cargo.toml

/root/repo/target/release/deps/librouting_quality-cab77ccb5dd67782.rmeta: crates/bench/src/bin/routing_quality.rs Cargo.toml

crates/bench/src/bin/routing_quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
