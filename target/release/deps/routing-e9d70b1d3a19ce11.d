/root/repo/target/release/deps/routing-e9d70b1d3a19ce11.d: tests/routing.rs Cargo.toml

/root/repo/target/release/deps/librouting-e9d70b1d3a19ce11.rmeta: tests/routing.rs Cargo.toml

tests/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
