/root/repo/target/release/deps/fig9_stretch-804b476fbd445c0f.d: crates/bench/src/bin/fig9_stretch.rs Cargo.toml

/root/repo/target/release/deps/libfig9_stretch-804b476fbd445c0f.rmeta: crates/bench/src/bin/fig9_stretch.rs Cargo.toml

crates/bench/src/bin/fig9_stretch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
