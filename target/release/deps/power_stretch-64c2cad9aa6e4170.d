/root/repo/target/release/deps/power_stretch-64c2cad9aa6e4170.d: crates/bench/src/bin/power_stretch.rs

/root/repo/target/release/deps/power_stretch-64c2cad9aa6e4170: crates/bench/src/bin/power_stretch.rs

crates/bench/src/bin/power_stretch.rs:
