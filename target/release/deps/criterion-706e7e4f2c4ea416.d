/root/repo/target/release/deps/criterion-706e7e4f2c4ea416.d: stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-706e7e4f2c4ea416.rmeta: stubs/criterion/src/lib.rs

stubs/criterion/src/lib.rs:
