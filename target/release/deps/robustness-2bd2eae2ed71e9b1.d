/root/repo/target/release/deps/robustness-2bd2eae2ed71e9b1.d: crates/bench/src/bin/robustness.rs

/root/repo/target/release/deps/robustness-2bd2eae2ed71e9b1: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:
