/root/repo/target/release/deps/geospan_graph-2f16857b84d1f295.d: crates/graph/src/lib.rs crates/graph/src/diameter.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/planarity.rs crates/graph/src/power.rs crates/graph/src/stats.rs crates/graph/src/stretch.rs crates/graph/src/svg.rs

/root/repo/target/release/deps/geospan_graph-2f16857b84d1f295: crates/graph/src/lib.rs crates/graph/src/diameter.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/planarity.rs crates/graph/src/power.rs crates/graph/src/stats.rs crates/graph/src/stretch.rs crates/graph/src/svg.rs

crates/graph/src/lib.rs:
crates/graph/src/diameter.rs:
crates/graph/src/gen.rs:
crates/graph/src/graph.rs:
crates/graph/src/paths.rs:
crates/graph/src/planarity.rs:
crates/graph/src/power.rs:
crates/graph/src/stats.rs:
crates/graph/src/stretch.rs:
crates/graph/src/svg.rs:
