/root/repo/target/release/deps/fault_properties-a2a898c16c457f7a.d: tests/fault_properties.rs

/root/repo/target/release/deps/fault_properties-a2a898c16c457f7a: tests/fault_properties.rs

tests/fault_properties.rs:
