/root/repo/target/release/deps/construction-05488baef552d470.d: crates/bench/benches/construction.rs Cargo.toml

/root/repo/target/release/deps/libconstruction-05488baef552d470.rmeta: crates/bench/benches/construction.rs Cargo.toml

crates/bench/benches/construction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
