/root/repo/target/release/deps/geospan_bench-198dbf9168ec9b2b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/geospan_bench-198dbf9168ec9b2b: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
