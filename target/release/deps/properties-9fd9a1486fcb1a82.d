/root/repo/target/release/deps/properties-9fd9a1486fcb1a82.d: crates/cds/tests/properties.rs

/root/repo/target/release/deps/properties-9fd9a1486fcb1a82: crates/cds/tests/properties.rs

crates/cds/tests/properties.rs:
