/root/repo/target/release/deps/large_scale-95205a51125bd5a8.d: tests/large_scale.rs Cargo.toml

/root/repo/target/release/deps/liblarge_scale-95205a51125bd5a8.rmeta: tests/large_scale.rs Cargo.toml

tests/large_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
