/root/repo/target/release/deps/geospan_cds-bd3b45a7c7d7b73a.d: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs Cargo.toml

/root/repo/target/release/deps/libgeospan_cds-bd3b45a7c7d7b73a.rmeta: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs Cargo.toml

crates/cds/src/lib.rs:
crates/cds/src/cluster.rs:
crates/cds/src/connector.rs:
crates/cds/src/dhop.rs:
crates/cds/src/protocol.rs:
crates/cds/src/rank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
