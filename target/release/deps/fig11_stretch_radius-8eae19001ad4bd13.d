/root/repo/target/release/deps/fig11_stretch_radius-8eae19001ad4bd13.d: crates/bench/src/bin/fig11_stretch_radius.rs Cargo.toml

/root/repo/target/release/deps/libfig11_stretch_radius-8eae19001ad4bd13.rmeta: crates/bench/src/bin/fig11_stretch_radius.rs Cargo.toml

crates/bench/src/bin/fig11_stretch_radius.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
