/root/repo/target/release/deps/power_stretch-ed8bda0d1a1b2dda.d: crates/bench/src/bin/power_stretch.rs

/root/repo/target/release/deps/power_stretch-ed8bda0d1a1b2dda: crates/bench/src/bin/power_stretch.rs

crates/bench/src/bin/power_stretch.rs:
