/root/repo/target/release/deps/ablation_rank-81eaf018b31c5af9.d: crates/bench/src/bin/ablation_rank.rs

/root/repo/target/release/deps/ablation_rank-81eaf018b31c5af9: crates/bench/src/bin/ablation_rank.rs

crates/bench/src/bin/ablation_rank.rs:
