/root/repo/target/release/deps/ldel_variants-26d803ef0c8cbb15.d: crates/bench/src/bin/ldel_variants.rs Cargo.toml

/root/repo/target/release/deps/libldel_variants-26d803ef0c8cbb15.rmeta: crates/bench/src/bin/ldel_variants.rs Cargo.toml

crates/bench/src/bin/ldel_variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
