/root/repo/target/release/deps/robustness-c7438513920dea02.d: crates/bench/src/bin/robustness.rs Cargo.toml

/root/repo/target/release/deps/librobustness-c7438513920dea02.rmeta: crates/bench/src/bin/robustness.rs Cargo.toml

crates/bench/src/bin/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
