/root/repo/target/release/deps/fig12_radius-4c8a79f46035ccad.d: crates/bench/src/bin/fig12_radius.rs

/root/repo/target/release/deps/fig12_radius-4c8a79f46035ccad: crates/bench/src/bin/fig12_radius.rs

crates/bench/src/bin/fig12_radius.rs:
