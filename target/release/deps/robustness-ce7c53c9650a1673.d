/root/repo/target/release/deps/robustness-ce7c53c9650a1673.d: crates/bench/src/bin/robustness.rs

/root/repo/target/release/deps/robustness-ce7c53c9650a1673: crates/bench/src/bin/robustness.rs

crates/bench/src/bin/robustness.rs:
