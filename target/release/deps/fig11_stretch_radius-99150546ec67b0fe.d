/root/repo/target/release/deps/fig11_stretch_radius-99150546ec67b0fe.d: crates/bench/src/bin/fig11_stretch_radius.rs

/root/repo/target/release/deps/fig11_stretch_radius-99150546ec67b0fe: crates/bench/src/bin/fig11_stretch_radius.rs

crates/bench/src/bin/fig11_stretch_radius.rs:
