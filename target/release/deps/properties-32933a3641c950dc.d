/root/repo/target/release/deps/properties-32933a3641c950dc.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-32933a3641c950dc.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
