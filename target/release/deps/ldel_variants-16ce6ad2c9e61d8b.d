/root/repo/target/release/deps/ldel_variants-16ce6ad2c9e61d8b.d: crates/bench/src/bin/ldel_variants.rs

/root/repo/target/release/deps/ldel_variants-16ce6ad2c9e61d8b: crates/bench/src/bin/ldel_variants.rs

crates/bench/src/bin/ldel_variants.rs:
