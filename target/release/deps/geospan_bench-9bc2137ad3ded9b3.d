/root/repo/target/release/deps/geospan_bench-9bc2137ad3ded9b3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgeospan_bench-9bc2137ad3ded9b3.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgeospan_bench-9bc2137ad3ded9b3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
