/root/repo/target/release/deps/ablation_planarizer-c453f61739f77f28.d: crates/bench/src/bin/ablation_planarizer.rs

/root/repo/target/release/deps/ablation_planarizer-c453f61739f77f28: crates/bench/src/bin/ablation_planarizer.rs

crates/bench/src/bin/ablation_planarizer.rs:
