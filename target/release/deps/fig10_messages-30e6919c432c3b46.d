/root/repo/target/release/deps/fig10_messages-30e6919c432c3b46.d: crates/bench/src/bin/fig10_messages.rs

/root/repo/target/release/deps/fig10_messages-30e6919c432c3b46: crates/bench/src/bin/fig10_messages.rs

crates/bench/src/bin/fig10_messages.rs:
