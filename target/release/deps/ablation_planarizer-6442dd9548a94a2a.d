/root/repo/target/release/deps/ablation_planarizer-6442dd9548a94a2a.d: crates/bench/src/bin/ablation_planarizer.rs Cargo.toml

/root/repo/target/release/deps/libablation_planarizer-6442dd9548a94a2a.rmeta: crates/bench/src/bin/ablation_planarizer.rs Cargo.toml

crates/bench/src/bin/ablation_planarizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
