/root/repo/target/release/deps/properties-6e5d632fe3ea62e8.d: crates/sim/tests/properties.rs

/root/repo/target/release/deps/properties-6e5d632fe3ea62e8: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
