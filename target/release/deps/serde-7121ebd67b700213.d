/root/repo/target/release/deps/serde-7121ebd67b700213.d: stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-7121ebd67b700213.rlib: stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-7121ebd67b700213.rmeta: stubs/serde/src/lib.rs

stubs/serde/src/lib.rs:
