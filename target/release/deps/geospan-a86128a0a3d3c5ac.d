/root/repo/target/release/deps/geospan-a86128a0a3d3c5ac.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libgeospan-a86128a0a3d3c5ac.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
