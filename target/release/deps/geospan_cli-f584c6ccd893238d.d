/root/repo/target/release/deps/geospan_cli-f584c6ccd893238d.d: src/bin/geospan-cli.rs

/root/repo/target/release/deps/geospan_cli-f584c6ccd893238d: src/bin/geospan-cli.rs

src/bin/geospan-cli.rs:
