/root/repo/target/release/deps/geospan_sim-de38025d6e0a0cdc.d: crates/sim/src/lib.rs crates/sim/src/fault.rs

/root/repo/target/release/deps/geospan_sim-de38025d6e0a0cdc: crates/sim/src/lib.rs crates/sim/src/fault.rs

crates/sim/src/lib.rs:
crates/sim/src/fault.rs:
