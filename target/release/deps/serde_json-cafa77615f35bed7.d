/root/repo/target/release/deps/serde_json-cafa77615f35bed7.d: stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-cafa77615f35bed7.rlib: stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-cafa77615f35bed7.rmeta: stubs/serde_json/src/lib.rs

stubs/serde_json/src/lib.rs:
