/root/repo/target/release/deps/properties-ec176c8c44b1bc8b.d: crates/geometry/tests/properties.rs

/root/repo/target/release/deps/properties-ec176c8c44b1bc8b: crates/geometry/tests/properties.rs

crates/geometry/tests/properties.rs:
