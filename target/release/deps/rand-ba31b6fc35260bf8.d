/root/repo/target/release/deps/rand-ba31b6fc35260bf8.d: stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-ba31b6fc35260bf8.rmeta: stubs/rand/src/lib.rs

stubs/rand/src/lib.rs:
