/root/repo/target/release/deps/geospan-e0fcf4852e674338.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libgeospan-e0fcf4852e674338.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
