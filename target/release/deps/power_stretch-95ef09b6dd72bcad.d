/root/repo/target/release/deps/power_stretch-95ef09b6dd72bcad.d: crates/bench/src/bin/power_stretch.rs Cargo.toml

/root/repo/target/release/deps/libpower_stretch-95ef09b6dd72bcad.rmeta: crates/bench/src/bin/power_stretch.rs Cargo.toml

crates/bench/src/bin/power_stretch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
