/root/repo/target/release/deps/properties-c9a2ca909c305a75.d: crates/graph/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-c9a2ca909c305a75.rmeta: crates/graph/tests/properties.rs Cargo.toml

crates/graph/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
