/root/repo/target/release/deps/rand_chacha-1ad01f5460a4c784.d: stubs/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-1ad01f5460a4c784.rlib: stubs/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-1ad01f5460a4c784.rmeta: stubs/rand_chacha/src/lib.rs

stubs/rand_chacha/src/lib.rs:
