/root/repo/target/release/deps/properties-548ff9f548b051e1.d: crates/topology/tests/properties.rs

/root/repo/target/release/deps/properties-548ff9f548b051e1: crates/topology/tests/properties.rs

crates/topology/tests/properties.rs:
