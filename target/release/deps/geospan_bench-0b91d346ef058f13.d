/root/repo/target/release/deps/geospan_bench-0b91d346ef058f13.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libgeospan_bench-0b91d346ef058f13.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
