/root/repo/target/release/deps/cli-9adcead7c3a7621d.d: tests/cli.rs Cargo.toml

/root/repo/target/release/deps/libcli-9adcead7c3a7621d.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_geospan-cli=placeholder:geospan-cli
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
