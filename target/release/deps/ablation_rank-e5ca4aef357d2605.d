/root/repo/target/release/deps/ablation_rank-e5ca4aef357d2605.d: crates/bench/src/bin/ablation_rank.rs Cargo.toml

/root/repo/target/release/deps/libablation_rank-e5ca4aef357d2605.rmeta: crates/bench/src/bin/ablation_rank.rs Cargo.toml

crates/bench/src/bin/ablation_rank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
