/root/repo/target/release/deps/fig8_degree-4e99dadfdfa99f67.d: crates/bench/src/bin/fig8_degree.rs

/root/repo/target/release/deps/fig8_degree-4e99dadfdfa99f67: crates/bench/src/bin/fig8_degree.rs

crates/bench/src/bin/fig8_degree.rs:
