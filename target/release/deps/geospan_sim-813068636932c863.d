/root/repo/target/release/deps/geospan_sim-813068636932c863.d: crates/sim/src/lib.rs crates/sim/src/fault.rs

/root/repo/target/release/deps/libgeospan_sim-813068636932c863.rlib: crates/sim/src/lib.rs crates/sim/src/fault.rs

/root/repo/target/release/deps/libgeospan_sim-813068636932c863.rmeta: crates/sim/src/lib.rs crates/sim/src/fault.rs

crates/sim/src/lib.rs:
crates/sim/src/fault.rs:
