/root/repo/target/release/deps/geospan_topology-56cee18d23a2d54d.d: crates/topology/src/lib.rs crates/topology/src/distributed.rs crates/topology/src/distributed2.rs crates/topology/src/gabriel.rs crates/topology/src/ldel.rs crates/topology/src/rdg.rs crates/topology/src/rng.rs crates/topology/src/yao.rs

/root/repo/target/release/deps/geospan_topology-56cee18d23a2d54d: crates/topology/src/lib.rs crates/topology/src/distributed.rs crates/topology/src/distributed2.rs crates/topology/src/gabriel.rs crates/topology/src/ldel.rs crates/topology/src/rdg.rs crates/topology/src/rng.rs crates/topology/src/yao.rs

crates/topology/src/lib.rs:
crates/topology/src/distributed.rs:
crates/topology/src/distributed2.rs:
crates/topology/src/gabriel.rs:
crates/topology/src/ldel.rs:
crates/topology/src/rdg.rs:
crates/topology/src/rng.rs:
crates/topology/src/yao.rs:
