/root/repo/target/release/deps/geospan_topology-13e150379d0ea315.d: crates/topology/src/lib.rs crates/topology/src/distributed.rs crates/topology/src/distributed2.rs crates/topology/src/gabriel.rs crates/topology/src/ldel.rs crates/topology/src/rdg.rs crates/topology/src/rng.rs crates/topology/src/yao.rs Cargo.toml

/root/repo/target/release/deps/libgeospan_topology-13e150379d0ea315.rmeta: crates/topology/src/lib.rs crates/topology/src/distributed.rs crates/topology/src/distributed2.rs crates/topology/src/gabriel.rs crates/topology/src/ldel.rs crates/topology/src/rdg.rs crates/topology/src/rng.rs crates/topology/src/yao.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/distributed.rs:
crates/topology/src/distributed2.rs:
crates/topology/src/gabriel.rs:
crates/topology/src/ldel.rs:
crates/topology/src/rdg.rs:
crates/topology/src/rng.rs:
crates/topology/src/yao.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
