/root/repo/target/release/deps/serde_derive-159710f8e888dabf.d: stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-159710f8e888dabf.so: stubs/serde_derive/src/lib.rs

stubs/serde_derive/src/lib.rs:
