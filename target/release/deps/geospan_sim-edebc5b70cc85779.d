/root/repo/target/release/deps/geospan_sim-edebc5b70cc85779.d: crates/sim/src/lib.rs crates/sim/src/fault.rs Cargo.toml

/root/repo/target/release/deps/libgeospan_sim-edebc5b70cc85779.rmeta: crates/sim/src/lib.rs crates/sim/src/fault.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/fault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
