/root/repo/target/release/deps/properties-e57466feb7e4824a.d: crates/geometry/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-e57466feb7e4824a.rmeta: crates/geometry/tests/properties.rs Cargo.toml

crates/geometry/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
