/root/repo/target/release/deps/serde-970fdfb8a5a8c0a4.d: stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-970fdfb8a5a8c0a4.rmeta: stubs/serde/src/lib.rs

stubs/serde/src/lib.rs:
