/root/repo/target/release/deps/fig10_messages-d576e6b79450bd30.d: crates/bench/src/bin/fig10_messages.rs Cargo.toml

/root/repo/target/release/deps/libfig10_messages-d576e6b79450bd30.rmeta: crates/bench/src/bin/fig10_messages.rs Cargo.toml

crates/bench/src/bin/fig10_messages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
