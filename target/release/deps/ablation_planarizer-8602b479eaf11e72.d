/root/repo/target/release/deps/ablation_planarizer-8602b479eaf11e72.d: crates/bench/src/bin/ablation_planarizer.rs

/root/repo/target/release/deps/ablation_planarizer-8602b479eaf11e72: crates/bench/src/bin/ablation_planarizer.rs

crates/bench/src/bin/ablation_planarizer.rs:
