/root/repo/target/release/deps/criterion-e42110447938a8d5.d: stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e42110447938a8d5.rlib: stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e42110447938a8d5.rmeta: stubs/criterion/src/lib.rs

stubs/criterion/src/lib.rs:
