/root/repo/target/release/deps/geospan_graph-154e8f69ec4069e0.d: crates/graph/src/lib.rs crates/graph/src/diameter.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/planarity.rs crates/graph/src/power.rs crates/graph/src/stats.rs crates/graph/src/stretch.rs crates/graph/src/svg.rs Cargo.toml

/root/repo/target/release/deps/libgeospan_graph-154e8f69ec4069e0.rmeta: crates/graph/src/lib.rs crates/graph/src/diameter.rs crates/graph/src/gen.rs crates/graph/src/graph.rs crates/graph/src/paths.rs crates/graph/src/planarity.rs crates/graph/src/power.rs crates/graph/src/stats.rs crates/graph/src/stretch.rs crates/graph/src/svg.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/diameter.rs:
crates/graph/src/gen.rs:
crates/graph/src/graph.rs:
crates/graph/src/paths.rs:
crates/graph/src/planarity.rs:
crates/graph/src/power.rs:
crates/graph/src/stats.rs:
crates/graph/src/stretch.rs:
crates/graph/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
