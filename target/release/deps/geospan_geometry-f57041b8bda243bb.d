/root/repo/target/release/deps/geospan_geometry-f57041b8bda243bb.d: crates/geometry/src/lib.rs crates/geometry/src/circle.rs crates/geometry/src/expansion.rs crates/geometry/src/hull.rs crates/geometry/src/point.rs crates/geometry/src/predicates.rs crates/geometry/src/segment.rs crates/geometry/src/triangulation.rs

/root/repo/target/release/deps/libgeospan_geometry-f57041b8bda243bb.rlib: crates/geometry/src/lib.rs crates/geometry/src/circle.rs crates/geometry/src/expansion.rs crates/geometry/src/hull.rs crates/geometry/src/point.rs crates/geometry/src/predicates.rs crates/geometry/src/segment.rs crates/geometry/src/triangulation.rs

/root/repo/target/release/deps/libgeospan_geometry-f57041b8bda243bb.rmeta: crates/geometry/src/lib.rs crates/geometry/src/circle.rs crates/geometry/src/expansion.rs crates/geometry/src/hull.rs crates/geometry/src/point.rs crates/geometry/src/predicates.rs crates/geometry/src/segment.rs crates/geometry/src/triangulation.rs

crates/geometry/src/lib.rs:
crates/geometry/src/circle.rs:
crates/geometry/src/expansion.rs:
crates/geometry/src/hull.rs:
crates/geometry/src/point.rs:
crates/geometry/src/predicates.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/triangulation.rs:
