/root/repo/target/release/deps/properties-821569f1f43e3b0f.d: tests/properties.rs

/root/repo/target/release/deps/properties-821569f1f43e3b0f: tests/properties.rs

tests/properties.rs:
