/root/repo/target/release/deps/geospan_cds-c556a5645b44e632.d: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs

/root/repo/target/release/deps/libgeospan_cds-c556a5645b44e632.rlib: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs

/root/repo/target/release/deps/libgeospan_cds-c556a5645b44e632.rmeta: crates/cds/src/lib.rs crates/cds/src/cluster.rs crates/cds/src/connector.rs crates/cds/src/dhop.rs crates/cds/src/protocol.rs crates/cds/src/rank.rs

crates/cds/src/lib.rs:
crates/cds/src/cluster.rs:
crates/cds/src/connector.rs:
crates/cds/src/dhop.rs:
crates/cds/src/protocol.rs:
crates/cds/src/rank.rs:
