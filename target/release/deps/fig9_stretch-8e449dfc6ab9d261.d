/root/repo/target/release/deps/fig9_stretch-8e449dfc6ab9d261.d: crates/bench/src/bin/fig9_stretch.rs Cargo.toml

/root/repo/target/release/deps/libfig9_stretch-8e449dfc6ab9d261.rmeta: crates/bench/src/bin/fig9_stretch.rs Cargo.toml

crates/bench/src/bin/fig9_stretch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
