/root/repo/target/release/deps/pipeline-f6af522403d18d1c.d: tests/pipeline.rs Cargo.toml

/root/repo/target/release/deps/libpipeline-f6af522403d18d1c.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
