/root/repo/target/release/deps/geospan_geometry-a217cba46977e336.d: crates/geometry/src/lib.rs crates/geometry/src/circle.rs crates/geometry/src/expansion.rs crates/geometry/src/hull.rs crates/geometry/src/point.rs crates/geometry/src/predicates.rs crates/geometry/src/segment.rs crates/geometry/src/triangulation.rs

/root/repo/target/release/deps/geospan_geometry-a217cba46977e336: crates/geometry/src/lib.rs crates/geometry/src/circle.rs crates/geometry/src/expansion.rs crates/geometry/src/hull.rs crates/geometry/src/point.rs crates/geometry/src/predicates.rs crates/geometry/src/segment.rs crates/geometry/src/triangulation.rs

crates/geometry/src/lib.rs:
crates/geometry/src/circle.rs:
crates/geometry/src/expansion.rs:
crates/geometry/src/hull.rs:
crates/geometry/src/point.rs:
crates/geometry/src/predicates.rs:
crates/geometry/src/segment.rs:
crates/geometry/src/triangulation.rs:
