/root/repo/target/release/deps/fig12_radius-284b69a1effc0753.d: crates/bench/src/bin/fig12_radius.rs

/root/repo/target/release/deps/fig12_radius-284b69a1effc0753: crates/bench/src/bin/fig12_radius.rs

crates/bench/src/bin/fig12_radius.rs:
