/root/repo/target/release/deps/geospan_cli-987fc233ebf4c41c.d: src/bin/geospan-cli.rs

/root/repo/target/release/deps/geospan_cli-987fc233ebf4c41c: src/bin/geospan-cli.rs

src/bin/geospan-cli.rs:
