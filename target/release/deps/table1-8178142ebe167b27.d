/root/repo/target/release/deps/table1-8178142ebe167b27.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-8178142ebe167b27: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
