/root/repo/target/release/deps/ablation_rank-77132c074c0fb382.d: crates/bench/src/bin/ablation_rank.rs Cargo.toml

/root/repo/target/release/deps/libablation_rank-77132c074c0fb382.rmeta: crates/bench/src/bin/ablation_rank.rs Cargo.toml

crates/bench/src/bin/ablation_rank.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
