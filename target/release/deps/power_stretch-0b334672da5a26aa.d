/root/repo/target/release/deps/power_stretch-0b334672da5a26aa.d: crates/bench/src/bin/power_stretch.rs Cargo.toml

/root/repo/target/release/deps/libpower_stretch-0b334672da5a26aa.rmeta: crates/bench/src/bin/power_stretch.rs Cargo.toml

crates/bench/src/bin/power_stretch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
