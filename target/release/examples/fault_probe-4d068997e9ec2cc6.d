/root/repo/target/release/examples/fault_probe-4d068997e9ec2cc6.d: examples/fault_probe.rs

/root/repo/target/release/examples/fault_probe-4d068997e9ec2cc6: examples/fault_probe.rs

examples/fault_probe.rs:
