/root/repo/target/release/examples/quickstart-f2d568d258f9724c.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f2d568d258f9724c: examples/quickstart.rs

examples/quickstart.rs:
