/root/repo/target/release/examples/mobility-00dbc32fbcd3f3b0.d: examples/mobility.rs

/root/repo/target/release/examples/mobility-00dbc32fbcd3f3b0: examples/mobility.rs

examples/mobility.rs:
