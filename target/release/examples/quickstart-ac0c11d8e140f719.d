/root/repo/target/release/examples/quickstart-ac0c11d8e140f719.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-ac0c11d8e140f719.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
