/root/repo/target/release/examples/sensor_network-4ec27a7bb777626f.d: examples/sensor_network.rs Cargo.toml

/root/repo/target/release/examples/libsensor_network-4ec27a7bb777626f.rmeta: examples/sensor_network.rs Cargo.toml

examples/sensor_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
