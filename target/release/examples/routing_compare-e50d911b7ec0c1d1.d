/root/repo/target/release/examples/routing_compare-e50d911b7ec0c1d1.d: examples/routing_compare.rs

/root/repo/target/release/examples/routing_compare-e50d911b7ec0c1d1: examples/routing_compare.rs

examples/routing_compare.rs:
