/root/repo/target/release/examples/topology_gallery-dcfdfb47b005b39f.d: examples/topology_gallery.rs Cargo.toml

/root/repo/target/release/examples/libtopology_gallery-dcfdfb47b005b39f.rmeta: examples/topology_gallery.rs Cargo.toml

examples/topology_gallery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
