/root/repo/target/release/examples/sensor_network-3684a15bb1636d35.d: examples/sensor_network.rs

/root/repo/target/release/examples/sensor_network-3684a15bb1636d35: examples/sensor_network.rs

examples/sensor_network.rs:
