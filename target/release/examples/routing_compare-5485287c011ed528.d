/root/repo/target/release/examples/routing_compare-5485287c011ed528.d: examples/routing_compare.rs Cargo.toml

/root/repo/target/release/examples/librouting_compare-5485287c011ed528.rmeta: examples/routing_compare.rs Cargo.toml

examples/routing_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
