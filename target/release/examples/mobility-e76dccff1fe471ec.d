/root/repo/target/release/examples/mobility-e76dccff1fe471ec.d: examples/mobility.rs Cargo.toml

/root/repo/target/release/examples/libmobility-e76dccff1fe471ec.rmeta: examples/mobility.rs Cargo.toml

examples/mobility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
