/root/repo/target/release/examples/topology_gallery-4ca8276dfa2fffd8.d: examples/topology_gallery.rs

/root/repo/target/release/examples/topology_gallery-4ca8276dfa2fffd8: examples/topology_gallery.rs

examples/topology_gallery.rs:
