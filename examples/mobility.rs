//! Mobility maintenance: the paper's claim that the *logical* backbone
//! survives node movement until a used link breaks.
//!
//! Nodes drift with a random-waypoint-like jitter and a `MobileBackbone`
//! absorbs each position update. While every used link holds, the
//! logical topology is kept verbatim (the paper's point: no update
//! needed even though positions changed). When a link breaks, the
//! maintainer re-elects dominators and connectors only inside the 2-hop
//! neighborhood of the break, falling back to a full reconstruction only
//! when the localized repair fails verification — and reports which path
//! it took.
//!
//! ```text
//! cargo run --release --example mobility
//! ```

use geospan::core::maintenance::{MaintenanceAction, MobileBackbone};
use geospan::core::BackboneConfig;
use geospan::graph::gen::{connected_unit_disk, UnitDiskBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RADIUS: f64 = 60.0;
const SIDE: f64 = 200.0;
const STEPS: usize = 400;
const SPEED: f64 = 0.25; // max displacement per step, per axis

fn main() {
    let (mut pts, _udg, _seed) = connected_unit_disk(80, SIDE, RADIUS, 23);
    let mut mobile =
        MobileBackbone::new(pts.clone(), BackboneConfig::new(RADIUS)).expect("valid UDG");
    let mut rng = StdRng::seed_from_u64(99);

    let mut kept = 0usize;
    let mut repaired_nodes = 0usize;
    for step in 0..STEPS {
        // Drift every node a little, staying inside the field.
        for p in &mut pts {
            p.x = (p.x + rng.random_range(-SPEED..SPEED)).clamp(0.0, SIDE);
            p.y = (p.y + rng.random_range(-SPEED..SPEED)).clamp(0.0, SIDE);
        }
        if !UnitDiskBuilder::new(RADIUS).build(&pts).is_connected() {
            println!("step {step}: field disconnected, halting the demo");
            break;
        }
        let report = mobile.update_positions(pts.clone()).expect("valid UDG");
        match report.action {
            MaintenanceAction::Kept => kept += 1,
            MaintenanceAction::LocalRepair { touched } => repaired_nodes += touched.len(),
            MaintenanceAction::FullRebuild { reason } => {
                println!("step {step}: full rebuild ({reason})");
            }
        }
    }

    println!("{STEPS} movement steps at max speed {SPEED} per axis:");
    println!("  backbone kept verbatim for {kept} steps");
    println!(
        "  local repairs: {} (avg {:.1} nodes touched of {}), full rebuilds: {}",
        mobile.local_repair_count(),
        repaired_nodes as f64 / mobile.local_repair_count().max(1) as f64,
        mobile.points().len(),
        mobile.rebuild_count()
    );
    println!(
        "  (slow movement amortizes maintenance: ~{:.1} steps per repair)",
        kept.max(1) as f64 / (mobile.local_repair_count() + mobile.rebuild_count()).max(1) as f64
    );
}
