//! Mobility maintenance: the paper's claim that the *logical* backbone
//! survives node movement until a used link breaks.
//!
//! Nodes drift with a random-waypoint-like jitter. After each step we
//! check whether every link of the constructed backbone is still within
//! transmission range; only when one breaks do we rebuild — and count how
//! rarely that happens for slow movement. The logical topology also stays
//! a *planar combinatorial* structure throughout (the embedding may bend,
//! but routing state remains valid, which is what face routing needs).
//!
//! ```text
//! cargo run --release --example mobility
//! ```

use geospan::core::{Backbone, BackboneBuilder, BackboneConfig};
use geospan::graph::gen::{connected_unit_disk, UnitDiskBuilder};
use geospan::graph::{Graph, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RADIUS: f64 = 60.0;
const SIDE: f64 = 200.0;
const STEPS: usize = 400;
const SPEED: f64 = 0.25; // max displacement per step, per axis

/// Is every edge the backbone relies on still a physical link?
fn backbone_intact(backbone: &Backbone, pts: &[Point]) -> bool {
    backbone
        .ldel_icds_prime()
        .edges()
        .all(|(u, v)| pts[u].distance(pts[v]) <= RADIUS)
}

fn main() {
    let (mut pts, udg, _seed) = connected_unit_disk(80, SIDE, RADIUS, 23);
    let builder = BackboneBuilder::new(BackboneConfig::new(RADIUS));
    let mut backbone = builder.build(&udg).expect("valid UDG");
    let mut rng = StdRng::seed_from_u64(99);

    let mut rebuilds = 0usize;
    let mut intact_steps = 0usize;
    for step in 0..STEPS {
        // Drift every node a little, staying inside the field.
        for p in &mut pts {
            p.x = (p.x + rng.random_range(-SPEED..SPEED)).clamp(0.0, SIDE);
            p.y = (p.y + rng.random_range(-SPEED..SPEED)).clamp(0.0, SIDE);
        }
        if backbone_intact(&backbone, &pts) {
            // The paper's point: no topology update needed while links
            // hold, even though positions changed.
            intact_steps += 1;
            continue;
        }
        // A used link broke: rebuild from the current physical UDG (the
        // localized algorithms make this cheap in practice; here we
        // rebuild globally for clarity).
        let udg: Graph = UnitDiskBuilder::new(RADIUS).build(&pts);
        if !udg.is_connected() {
            println!("step {step}: field disconnected, halting the demo");
            break;
        }
        backbone = builder.build(&udg).expect("valid UDG");
        rebuilds += 1;
    }

    println!("{STEPS} movement steps at max speed {SPEED} per axis:");
    println!("  backbone survived unchanged for {intact_steps} steps");
    println!("  rebuilds required: {rebuilds}");
    println!(
        "  (slow movement amortizes maintenance: ~{:.1} steps per rebuild)",
        intact_steps.max(1) as f64 / rebuilds.max(1) as f64
    );
}
