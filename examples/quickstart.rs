//! Quickstart: deploy a random wireless network, build the planar
//! spanner backbone, and verify the paper's headline properties.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use geospan::core::{BackboneBuilder, BackboneConfig, Role};
use geospan::graph::gen::connected_unit_disk;
use geospan::graph::planarity::is_plane_embedding;
use geospan::graph::stats::{degree_stats, degree_stats_over};
use geospan::graph::stretch::{stretch_factors, StretchOptions};

fn main() {
    // 100 nodes uniform in a 200 x 200 field, transmission radius 60 —
    // the paper's Table I configuration. Disconnected deployments are
    // re-sampled, exactly as in the paper.
    let (_points, udg, seed) = connected_unit_disk(100, 200.0, 60.0, 42);
    println!(
        "deployment: {} nodes, {} links (accepted seed {seed})",
        udg.node_count(),
        udg.edge_count()
    );

    // Build the backbone: MIS clustering -> connector election ->
    // localized Delaunay planarization.
    let backbone = BackboneBuilder::new(BackboneConfig::new(60.0))
        .build(&udg)
        .expect("a valid UDG always yields a backbone");

    let dominators = backbone.cds_graphs().dominators.len();
    let connectors = backbone.cds_graphs().connectors.len();
    println!("backbone: {dominators} dominators + {connectors} connectors");

    // Property 1: the backbone is a plane graph.
    let planar = is_plane_embedding(backbone.ldel_icds());
    println!("planar backbone: {planar}");
    assert!(planar);

    // Property 2: backbone degree is bounded (independent of density).
    let backbone_deg = degree_stats_over(backbone.ldel_icds(), backbone.backbone_nodes());
    println!(
        "backbone degree: avg {:.2}, max {} (UDG max {})",
        backbone_deg.avg,
        backbone_deg.max,
        degree_stats(&udg).max
    );

    // Property 3: LDel(ICDS') is a hop and length spanner of the UDG.
    let report = stretch_factors(
        &udg,
        backbone.ldel_icds_prime(),
        StretchOptions {
            min_euclidean_separation: 60.0,
        },
    );
    assert_eq!(
        report.disconnected_pairs, 0,
        "spanner must preserve connectivity"
    );
    println!(
        "stretch vs UDG: length avg {:.3} / max {:.3}, hops avg {:.3} / max {:.3}",
        report.length_avg, report.length_max, report.hop_avg, report.hop_max
    );

    // Property 4: the structure is sparse.
    println!(
        "edges: UDG {} -> LDel(ICDS') {} ({:.1}% kept)",
        udg.edge_count(),
        backbone.ldel_icds_prime().edge_count(),
        100.0 * backbone.ldel_icds_prime().edge_count() as f64 / udg.edge_count() as f64
    );

    // Roles, as in the paper's Figure 3.
    let (mut d, mut c, mut o) = (0, 0, 0);
    for role in backbone.roles() {
        match role {
            Role::Dominator => d += 1,
            Role::Connector => c += 1,
            Role::Dominatee => o += 1,
        }
    }
    println!("roles: {d} dominators, {c} connectors, {o} ordinary nodes");
}
