//! The paper's motivating scenario: a sensor field reporting to a static
//! sink.
//!
//! Every sensor periodically sends a reading to the sink node. Flooding
//! delivers it at the cost of one transmission per node *per reading*;
//! dominating-set-based routing over the planar backbone delivers it
//! along a short path. This example quantifies the difference.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use geospan::core::routing::{backbone_route, flood_transmissions};
use geospan::core::{BackboneBuilder, BackboneConfig};
use geospan::graph::gen::connected_unit_disk;
use geospan::graph::paths::bfs_hops;

fn main() {
    let (points, udg, _seed) = connected_unit_disk(150, 250.0, 60.0, 9);
    let n = udg.node_count();

    // The sink: the node closest to the field's corner (a base station).
    let sink = (0..n)
        .min_by(|&a, &b| {
            points[a]
                .norm_sq()
                .partial_cmp(&points[b].norm_sq())
                .unwrap()
        })
        .unwrap();
    println!(
        "sensor field: {n} nodes, sink = node {sink} at {}",
        points[sink]
    );

    let backbone = BackboneBuilder::new(BackboneConfig::new(60.0))
        .build(&udg)
        .expect("valid UDG");

    // Route a reading from every sensor to the sink.
    let mut total_hops = 0usize;
    let mut worst_hops = 0usize;
    let mut total_optimal = 0u64;
    let mut delivered = 0usize;
    let optimal = bfs_hops(&udg, sink);
    #[allow(clippy::needless_range_loop)]
    for s in 0..n {
        if s == sink {
            continue;
        }
        let route = backbone_route(&backbone, &udg, s, sink, 50 * n);
        assert!(route.delivered(), "sensor {s} failed to reach the sink");
        delivered += 1;
        total_hops += route.hops();
        worst_hops = worst_hops.max(route.hops());
        total_optimal += u64::from(optimal[s].expect("connected"));
    }
    let avg_hops = total_hops as f64 / delivered as f64;
    let avg_opt = total_optimal as f64 / delivered as f64;
    println!("backbone routing: all {delivered} readings delivered");
    println!(
        "  avg {avg_hops:.2} hops (shortest possible {avg_opt:.2}, overhead {:.1}%), worst {worst_hops}",
        100.0 * (avg_hops / avg_opt - 1.0)
    );

    // Compare transmission counts for one round of readings.
    let flood: usize = (0..n)
        .filter(|&s| s != sink)
        .map(|s| flood_transmissions(&udg, s))
        .sum();
    println!(
        "transmissions for one full round: flooding {} vs backbone routing {}  ({:.0}x saving)",
        flood,
        total_hops,
        flood as f64 / total_hops as f64
    );

    // The backbone keeps only a fraction of the nodes busy forwarding.
    let backbone_nodes = backbone.backbone_nodes().len();
    println!(
        "forwarding load is carried by the {backbone_nodes} backbone nodes ({:.0}% of the field)",
        100.0 * backbone_nodes as f64 / n as f64
    );
}
