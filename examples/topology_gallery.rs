//! Renders the Figure 6/7-style topology gallery for one deployment:
//! the UDG and all nine derived structures as SVG files.
//!
//! ```text
//! cargo run --release --example topology_gallery -- [output-dir]
//! ```
//!
//! Writes `gallery/*.svg` by default.

use geospan::cds::{build_cds, ClusterRank, Role};
use geospan::core::{BackboneBuilder, BackboneConfig};
use geospan::graph::gen::connected_unit_disk;
use geospan::graph::svg::{render_svg, NodeRole, SvgOptions};
use geospan::graph::Graph;
use geospan::topology::{
    gabriel, ldel, relative_neighborhood, restricted_delaunay, theta, unit_delaunay, yao, yao_sink,
};

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "gallery".to_string());
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let (_pts, udg, seed) = connected_unit_disk(100, 200.0, 60.0, 2);
    println!("deployment seed {seed}; writing SVGs to {out_dir}/");

    let cds = build_cds(&udg, &ClusterRank::LowestId);
    let backbone = BackboneBuilder::new(BackboneConfig::new(60.0))
        .build(&udg)
        .expect("valid UDG");
    let roles: Vec<NodeRole> = cds
        .roles
        .iter()
        .map(|r| match r {
            Role::Dominator => NodeRole::Dominator,
            Role::Connector => NodeRole::Connector,
            Role::Dominatee => NodeRole::Dominatee,
        })
        .collect();

    let gallery: Vec<(&str, Graph)> = vec![
        ("udg", udg.clone()),
        ("rng", relative_neighborhood(&udg)),
        ("gabriel", gabriel(&udg)),
        ("yao6", yao(&udg, 6)),
        ("theta6", theta(&udg, 6)),
        ("yao_sink6", yao_sink(&udg, 6)),
        ("rdg", restricted_delaunay(&udg)),
        ("udel", unit_delaunay(&udg)),
        ("ldel", ldel::planarized(&udg).graph),
        ("cds", cds.cds.clone()),
        ("cds_prime", cds.cds_prime.clone()),
        ("icds", cds.icds.clone()),
        ("icds_prime", cds.icds_prime.clone()),
        ("ldel_icds", backbone.ldel_icds().clone()),
        ("ldel_icds_prime", backbone.ldel_icds_prime().clone()),
    ];

    for (name, graph) in &gallery {
        let opts = SvgOptions {
            title: format!("{name} — {} edges", graph.edge_count()),
            ..SvgOptions::default()
        };
        let svg = render_svg(graph, &roles, &opts);
        let path = format!("{out_dir}/{name}.svg");
        std::fs::write(&path, svg).expect("write SVG");
        println!("{path}: {} edges", graph.edge_count());
    }
}
