//! GPSR routing quality across planar topologies.
//!
//! GPSR needs a planar graph for its perimeter mode. Karp & Kung ran it
//! on RNG and Gabriel subgraphs; the paper's point is that a planar
//! *spanner* backbone gives shorter routes with bounded node degree.
//! This example routes all sampled pairs over RNG, GG and LDel(ICDS')
//! and compares delivery, hops and path length.
//!
//! ```text
//! cargo run --release --example routing_compare
//! ```

use geospan::core::routing::{backbone_route, gpsr_route, Route};
use geospan::core::{BackboneBuilder, BackboneConfig};
use geospan::graph::gen::connected_unit_disk;
use geospan::graph::paths::{bfs_hops, dijkstra_lengths};
use geospan::graph::Graph;
use geospan::topology::{gabriel, relative_neighborhood};

struct Tally {
    delivered: usize,
    total: usize,
    hops: f64,
    hop_opt: f64,
    length: f64,
    len_opt: f64,
}

impl Tally {
    fn new() -> Self {
        Tally {
            delivered: 0,
            total: 0,
            hops: 0.0,
            hop_opt: 0.0,
            length: 0.0,
            len_opt: 0.0,
        }
    }

    fn add(&mut self, g: &Graph, route: &Route, opt_hops: u32, opt_len: f64) {
        self.total += 1;
        if route.delivered() {
            self.delivered += 1;
            self.hops += route.hops() as f64;
            self.length += route.length(g);
            self.hop_opt += f64::from(opt_hops);
            self.len_opt += opt_len;
        }
    }

    fn print(&self, name: &str) {
        println!(
            "{:<14} delivery {:>5.1}%   avg hops {:>6.2} ({:.2}x optimal)   avg length {:>7.1} ({:.2}x optimal)",
            name,
            100.0 * self.delivered as f64 / self.total as f64,
            self.hops / self.delivered as f64,
            self.hops / self.hop_opt,
            self.length / self.delivered as f64,
            self.length / self.len_opt,
        );
    }
}

fn main() {
    let (_pts, udg, _seed) = connected_unit_disk(120, 220.0, 60.0, 17);
    let n = udg.node_count();
    let rng = relative_neighborhood(&udg);
    let gg = gabriel(&udg);
    let backbone = BackboneBuilder::new(BackboneConfig::new(60.0))
        .build(&udg)
        .expect("valid UDG");

    println!(
        "network: {n} nodes | RNG {} edges, GG {} edges, LDel(ICDS) {} edges",
        rng.edge_count(),
        gg.edge_count(),
        backbone.ldel_icds().edge_count()
    );

    let mut t_rng = Tally::new();
    let mut t_gg = Tally::new();
    let mut t_bb = Tally::new();

    for s in (0..n).step_by(3) {
        let opt_hops = bfs_hops(&udg, s);
        let opt_len = dijkstra_lengths(&udg, s);
        for t in (1..n).step_by(5) {
            if s == t {
                continue;
            }
            let (oh, ol) = (opt_hops[t].unwrap(), opt_len[t].unwrap());
            t_rng.add(&rng, &gpsr_route(&rng, s, t, 100 * n), oh, ol);
            t_gg.add(&gg, &gpsr_route(&gg, s, t, 100 * n), oh, ol);
            let route = backbone_route(&backbone, &udg, s, t, 100 * n);
            t_bb.add(backbone.ldel_icds_prime(), &route, oh, ol);
        }
    }

    println!("\nGPSR over each planar topology ({} pairs):", t_rng.total);
    t_rng.print("RNG");
    t_gg.print("GG");
    t_bb.print("LDel(ICDS')");
    println!(
        "\nThe backbone routes stay close to optimal while forwarding state and \
         node degree remain bounded — the paper's trade."
    );
}
